#include "core/stream.hpp"

#include <optional>
#include <thread>
#include <utility>

#include "util/logging.hpp"

namespace iotscope::core {

StreamingStudy::StreamingStudy(const inventory::IoTDeviceDatabase& db,
                               const telescope::FlowTupleStore& store,
                               PipelineOptions pipeline_options,
                               StreamOptions options)
    : store_(&store),
      options_(options),
      pipeline_(db, std::move(pipeline_options)),
      watcher_(store),
      watermark_gauge_(obs::Registry::instance().gauge("stream.watermark")),
      snapshot_stage_(obs::Registry::instance().stage("stream.snapshot")),
      admit_stage_(obs::Registry::instance().stage("stream.admit")),
      decode_stage_(obs::Registry::instance().stage("store.decode")),
      hours_counter_(obs::Registry::instance().counter("stream.hours")),
      late_counter_(obs::Registry::instance().counter("stream.late_hours")),
      evicted_counter_(
          obs::Registry::instance().counter("stream.evicted")) {}

std::size_t StreamingStudy::poll_once() {
  std::size_t admitted = 0;
  for (const int interval : watcher_.poll()) {
    if (interval < watermark_.load(std::memory_order_relaxed)) {
      // The merged reduction already moved past this slot; admitting it
      // now would reorder the stream against the batch run. Drop it, as
      // a dataflow watermark drops late data.
      ++stats_.hours_late;
      late_counter_.add(1);
      if (!warned_late_) {
        warned_late_ = true;
        IOTSCOPE_LOG_WARN(
            "stream: dropping late hour %d (watermark %d); further late "
            "hours counted silently",
            interval, watermark_.load(std::memory_order_relaxed));
      }
      continue;
    }
    // Atomic rename publication means a listed file is complete; a
    // nullopt read can only mean the file was removed, which is outside
    // the store's contract — skip rather than crash.
    std::optional<net::FlowBatch> batch;
    {
      obs::ScopedTimer timer(decode_stage_);
      batch = store_->get_batch(interval);
    }
    if (!batch) continue;
    admit(*batch);
    ++admitted;
  }
  return admitted;
}

void StreamingStudy::admit(const net::FlowBatch& batch) {
  {
    obs::ScopedTimer timer(admit_stage_);
    pipeline_.observe(batch);
  }
  watermark_.store(batch.interval + 1, std::memory_order_release);
  watermark_gauge_.set(batch.interval + 1);
  ++stats_.hours_admitted;
  hours_counter_.add(1);

  if (options_.evict_after_hours > 0) {
    const std::size_t evicted = pipeline_.evict_idle_unknown_profiles(
        batch.interval + 1 - options_.evict_after_hours);
    if (evicted > 0) {
      stats_.profiles_evicted += evicted;
      evicted_counter_.add(static_cast<std::int64_t>(evicted));
    }
  }

  if (options_.snapshot_every > 0 &&
      stats_.hours_admitted % static_cast<std::uint64_t>(
                                  options_.snapshot_every) ==
          0) {
    publish_snapshot();
  }
}

void StreamingStudy::follow(const std::function<bool()>& should_stop) {
  for (;;) {
    if (poll_once() != 0) continue;
    // Only consult the stop predicate on a drained store: a stop raised
    // while hours are still landing must not strand published files.
    if (should_stop()) {
      // The writer may have published more hours between our empty poll
      // and the stop signal (a finishing writer publishes its last file
      // and THEN raises the flag) — drain once more so a stop observed
      // in that window never strands the tail of the stream.
      while (poll_once() != 0) {
      }
      return;
    }
    std::this_thread::sleep_for(options_.poll_interval);
  }
}

std::shared_ptr<const Report> StreamingStudy::publish_snapshot() {
  std::shared_ptr<const PublishedReport> published;
  {
    obs::ScopedTimer timer(snapshot_stage_);
    published = std::make_shared<const PublishedReport>(
        PublishedReport{stats_.snapshots_published + 1, pipeline_.snapshot()});
  }
  // Atomic publication: server workers loading latest_ concurrently see
  // either the previous snapshot or this one, never a torn pointer.
  latest_.store(published, std::memory_order_release);
  ++stats_.snapshots_published;
  return {published, &published->report};
}

std::shared_ptr<const Report> StreamingStudy::latest_snapshot() const {
  auto published = latest_.load(std::memory_order_acquire);
  if (!published) return nullptr;
  // Aliasing constructor: the Report pointer shares the
  // PublishedReport's control block, so the epoch wrapper stays alive
  // exactly as long as any reader holds the report.
  return {published, &published->report};
}

std::shared_ptr<const PublishedReport> StreamingStudy::latest_published()
    const {
  return latest_.load(std::memory_order_acquire);
}

std::uint64_t StreamingStudy::epoch() const noexcept {
  const auto published = latest_.load(std::memory_order_acquire);
  return published ? published->epoch : 0;
}

Report StreamingStudy::finalize() {
  Report report = pipeline_.finalize();
  latest_.store(std::make_shared<const PublishedReport>(PublishedReport{
                    stats_.snapshots_published + 1, report}),
                std::memory_order_release);
  ++stats_.snapshots_published;
  return report;
}

}  // namespace iotscope::core
