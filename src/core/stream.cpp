#include "core/stream.hpp"

#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "util/io.hpp"
#include "util/logging.hpp"

namespace iotscope::core {

namespace {

/// Lane-to-hook channel for graph-mode quarantine: the guarded decode
/// task sets message-then-flag (release) on a scheduler lane; the
/// fence-serialized after-hook reads flag-then-message (acquire).
struct CorruptProbe {
  std::atomic<bool> corrupt{false};
  std::string message;
};

}  // namespace

StreamingStudy::StreamingStudy(const inventory::IoTDeviceDatabase& db,
                               const telescope::FlowTupleStore& store,
                               PipelineOptions pipeline_options,
                               StreamOptions options)
    : store_(&store),
      options_(options),
      pipeline_(db, std::move(pipeline_options)),
      watcher_(store),
      watermark_gauge_(obs::Registry::instance().gauge("stream.watermark")),
      snapshot_stage_(obs::Registry::instance().stage("stream.snapshot")),
      admit_stage_(obs::Registry::instance().stage("stream.admit")),
      decode_stage_(obs::Registry::instance().stage("store.decode")),
      hours_counter_(obs::Registry::instance().counter("stream.hours")),
      late_counter_(obs::Registry::instance().counter("stream.late_hours")),
      corrupt_counter_(
          obs::Registry::instance().counter("stream.corrupt_hours")),
      evicted_counter_(
          obs::Registry::instance().counter("stream.evicted")) {}

std::size_t StreamingStudy::poll_once() {
  const bool graph =
      pipeline_.options().scheduler == ShardScheduler::Graph;
  std::size_t admitted = 0;
  for (const int interval : watcher_.poll()) {
    if (interval < admit_frontier_) {
      // The merged reduction already moved past this slot (or, in graph
      // mode, the slot is already in the task graph); admitting it now
      // would reorder the stream against the batch run. Drop it, as a
      // dataflow watermark drops late data.
      ++stats_.hours_late;
      late_counter_.add(1);
      if (!warned_late_) {
        warned_late_ = true;
        IOTSCOPE_LOG_WARN(
            "stream: dropping late hour %d (frontier %d); further late "
            "hours counted silently",
            interval, admit_frontier_);
      }
      continue;
    }
    if (graph) {
      // Task-graph mode: hand the store read itself to the scheduler as
      // a decode task, so hour N+1's decode overlaps hour N's
      // observe/fan-in. Admission bookkeeping that later polls depend on
      // (frontier, admitted count, snapshot cadence) happens here at
      // submission; watermark/eviction/snapshot publication happen in
      // the fence-serialized after-hook once the hour is folded.
      //
      // One *guarded* whole-hour loader rather than hour_loaders(): a
      // decode task that throws would fail the scheduler and kill
      // follow() at its next drain point, and a corrupt hour split into
      // parts cannot be quarantined atomically (already-decoded parts
      // would partial-fold). The IoError is caught on the lane, flagged
      // through the probe, and the hour folds as empty — byte-equivalent
      // to never observing it. Cross-hour overlap (§16) is preserved;
      // only intra-hour decode splitting is given up in follow mode.
      admit_frontier_ = interval + 1;
      ++stats_.hours_admitted;
      hours_counter_.add(1);
      const bool snapshot_due = snapshot_due_now();
      auto probe = std::make_shared<CorruptProbe>();
      std::vector<telescope::FlowTupleStore::HourPartLoader> loaders;
      loaders.push_back([store = store_, interval, probe,
                         &decode_stage = decode_stage_]() -> net::FlowBatch {
        net::FlowBatch batch;
        batch.interval = interval;
        try {
          obs::ScopedTimer timer(decode_stage);
          // A nullopt read means the file was removed out from under us
          // (outside the store's contract) — fold the hour empty.
          if (auto loaded = store->get_batch(interval)) {
            batch = std::move(*loaded);
          }
        } catch (const util::IoError& error) {
          probe->message = error.what();
          probe->corrupt.store(true, std::memory_order_release);
          batch = net::FlowBatch{};
          batch.interval = interval;
        }
        return batch;
      });
      pipeline_.observe_async(
          std::move(loaders),
          [this, snapshot_due, probe](const net::FlowBatch& batch, bool ok) {
            if (probe->corrupt.load(std::memory_order_acquire)) {
              note_corrupt_hour(batch.interval, probe->message);
            }
            hour_folded(batch, ok, snapshot_due);
          });
      ++admitted;
      continue;
    }
    // Atomic rename publication means a listed file is complete; a
    // nullopt read can only mean the file was removed, which is outside
    // the store's contract — skip rather than crash. A decode failure
    // (util::IoError) quarantines the hour: count it, fold nothing, and
    // move the watermark past it so ingestion continues.
    std::optional<net::FlowBatch> batch;
    try {
      obs::ScopedTimer timer(decode_stage_);
      batch = store_->get_batch(interval);
    } catch (const util::IoError& error) {
      note_corrupt_hour(interval, error.what());
      admit_frontier_ = interval + 1;
      ++stats_.hours_admitted;
      hours_counter_.add(1);
      net::FlowBatch empty;
      empty.interval = interval;
      hour_folded(empty, /*ok=*/true, snapshot_due_now());
      ++admitted;
      continue;
    }
    if (!batch) continue;
    admit(*batch);
    ++admitted;
  }
  return admitted;
}

void StreamingStudy::admit(const net::FlowBatch& batch) {
  {
    obs::ScopedTimer timer(admit_stage_);
    pipeline_.observe(batch);
  }
  admit_frontier_ = batch.interval + 1;
  ++stats_.hours_admitted;
  hours_counter_.add(1);
  hour_folded(batch, /*ok=*/true, snapshot_due_now());
}

bool StreamingStudy::snapshot_due_now() const {
  return options_.snapshot_every > 0 &&
         stats_.hours_admitted %
                 static_cast<std::uint64_t>(options_.snapshot_every) ==
             0;
}

void StreamingStudy::note_corrupt_hour(int interval,
                                       const std::string& message) {
  ++stats_.hours_corrupt;
  corrupt_counter_.add(1);
  if (!warned_corrupt_) {
    warned_corrupt_ = true;
    IOTSCOPE_LOG_WARN(
        "stream: quarantining corrupt hour %d (%s); further corrupt hours "
        "counted silently",
        interval, message.c_str());
  }
}

void StreamingStudy::hour_folded(const net::FlowBatch& batch, bool ok,
                                 bool snapshot_due) {
  // An aborted hour (a task in its subgraph failed) folded nothing; the
  // error itself is rethrown from the next drain point — here we only
  // refrain from advancing the watermark past work that never happened.
  if (!ok) return;
  watermark_.store(batch.interval + 1, std::memory_order_release);
  watermark_gauge_.set(batch.interval + 1);

  if (options_.evict_after_hours > 0) {
    const std::size_t evicted = pipeline_.evict_idle_unknown_profiles(
        batch.interval + 1 - options_.evict_after_hours);
    if (evicted > 0) {
      stats_.profiles_evicted += evicted;
      evicted_counter_.add(static_cast<std::int64_t>(evicted));
    }
  }

  if (snapshot_due) publish_snapshot();
}

void StreamingStudy::follow(const std::function<bool()>& should_stop) {
  for (;;) {
    if (poll_once() != 0) continue;
    // Only consult the stop predicate on a drained store: a stop raised
    // while hours are still landing must not strand published files.
    if (should_stop()) {
      // The writer may have published more hours between our empty poll
      // and the stop signal (a finishing writer publishes its last file
      // and THEN raises the flag) — drain once more so a stop observed
      // in that window never strands the tail of the stream.
      while (poll_once() != 0) {
      }
      // Graph mode: submitted hours may still be in flight; returning
      // means every admitted hour is folded (and a task error from any
      // of them surfaces here, on the ingest thread).
      pipeline_.drain();
      return;
    }
    std::this_thread::sleep_for(options_.poll_interval);
  }
}

std::shared_ptr<const Report> StreamingStudy::publish_snapshot() {
  std::shared_ptr<const PublishedReport> published;
  {
    obs::ScopedTimer timer(snapshot_stage_);
    published = std::make_shared<const PublishedReport>(
        PublishedReport{stats_.snapshots_published + 1, pipeline_.snapshot()});
  }
  // Atomic publication: server workers loading latest_ concurrently see
  // either the previous snapshot or this one, never a torn pointer.
  latest_.store(published, std::memory_order_release);
  ++stats_.snapshots_published;
  return {published, &published->report};
}

std::shared_ptr<const Report> StreamingStudy::latest_snapshot() const {
  auto published = latest_.load(std::memory_order_acquire);
  if (!published) return nullptr;
  // Aliasing constructor: the Report pointer shares the
  // PublishedReport's control block, so the epoch wrapper stays alive
  // exactly as long as any reader holds the report.
  return {published, &published->report};
}

std::shared_ptr<const PublishedReport> StreamingStudy::latest_published()
    const {
  return latest_.load(std::memory_order_acquire);
}

std::uint64_t StreamingStudy::epoch() const noexcept {
  const auto published = latest_.load(std::memory_order_acquire);
  return published ? published->epoch : 0;
}

Report StreamingStudy::finalize() {
  Report report = pipeline_.finalize();
  latest_.store(std::make_shared<const PublishedReport>(PublishedReport{
                    stats_.snapshots_published + 1, report}),
                std::memory_order_release);
  ++stats_.snapshots_published;
  return report;
}

}  // namespace iotscope::core
