#include "core/malicious.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace iotscope::core {

MaliciousnessReport analyze_maliciousness(
    const Report& report, const inventory::IoTDeviceDatabase& db,
    const intel::ThreatRepository& threats,
    const intel::MalwareDatabase& malware,
    const intel::FamilyResolver& resolver,
    const MaliciousnessOptions& options) {
  MaliciousnessReport out;

  // ---- build the explored set: every backscatter device plus the top-N
  // scanning/UDP devices of each realm ----
  std::unordered_set<std::uint32_t> explored;
  for (const auto& ledger : report.devices) {
    if (ledger.backscatter() > 0) explored.insert(ledger.device);
  }
  auto add_top = [&](bool consumer) {
    std::vector<const DeviceTraffic*> candidates;
    for (const auto& ledger : report.devices) {
      if (db.devices()[ledger.device].is_consumer() != consumer) continue;
      if (ledger.tcp_scan + ledger.udp == 0) continue;
      candidates.push_back(&ledger);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const DeviceTraffic* a, const DeviceTraffic* b) {
                return a->tcp_scan + a->udp > b->tcp_scan + b->udp;
              });
    const std::size_t take = std::min(options.top_per_realm, candidates.size());
    for (std::size_t i = 0; i < take; ++i) {
      explored.insert(candidates[i]->device);
    }
  };
  add_top(true);
  add_top(false);
  out.explored_devices = explored.size();

  // ---- Cymon-style correlation (Table VI / Fig 11) ----
  for (const auto device : explored) {
    const auto* ledger = report.traffic_for(device);
    const double packets =
        ledger ? static_cast<double>(ledger->packets) : 0.0;
    out.explored_packets.push_back(packets);
    const auto ip = db.devices()[device].ip;
    const std::uint32_t mask = threats.categories(ip);
    if (mask == 0) continue;
    ++out.flagged_devices;
    out.flagged_packets.push_back(packets);
    for (int c = 0; c < intel::kThreatCategoryCount; ++c) {
      if (mask & (1u << c)) ++out.category_devices[static_cast<std::size_t>(c)];
    }
    if (mask & (1u << static_cast<int>(intel::ThreatCategory::Malware))) {
      const bool cps = db.devices()[device].is_cps();
      const bool scans = ledger != nullptr && ledger->tcp_scan > 0;
      if (cps) {
        ++out.malware_cps;
        if (scans) ++out.malware_scanning_cps;
      } else {
        ++out.malware_consumer;
        if (scans) ++out.malware_scanning_consumer;
      }
    }
  }

  // ---- malware-database correlation over ALL inferred devices ----
  std::set<std::string> hashes;
  std::set<std::string> domains;
  std::set<std::string> families;
  for (const auto& ledger : report.devices) {
    const auto ip = db.devices()[ledger.device].ip;
    const auto reports = malware.reports_contacting(ip);
    if (reports.empty()) continue;
    ++out.devices_in_reports;
    for (const auto* r : reports) {
      hashes.insert(r->sha256);
      for (const auto& d : r->domains) domains.insert(d);
      if (const auto verdict = resolver.lookup(r->sha256)) {
        families.insert(verdict->family);
      }
    }
  }
  out.unique_hashes = hashes.size();
  out.domains = domains.size();
  out.families.assign(families.begin(), families.end());

  return out;
}

}  // namespace iotscope::core
