#include "core/study.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "telescope/capture.hpp"
#include "util/logging.hpp"

namespace iotscope::core {

namespace {

/// Streams synthetic traffic through the telescope into the pipeline.
///
/// Sequential pipelines observe each completed hour inline. Threaded
/// pipelines move analysis onto a dedicated consumer: the capture sink
/// enqueues completed hours into a small bounded queue, so packet
/// synthesis/aggregation of hour N+1 overlaps the sharded analysis of
/// hour N (fan-out inside observe(), fan-in here at the queue).
workload::SynthStats synthesize_and_analyze(
    const workload::Scenario& scenario, const workload::ScenarioConfig& config,
    AnalysisPipeline& pipeline) {
  if (pipeline.threads() <= 1) {
    telescope::TelescopeCapture capture(
        telescope::DarknetSpace(config.darknet),
        [&pipeline](net::HourlyFlows&& flows) { pipeline.observe(flows); });
    return workload::synthesize_into(scenario, config, capture);
  }

  // Bounded hand-off queue: deep enough to ride out uneven hours, small
  // enough that at most a few hours of flowtuples are in flight.
  constexpr std::size_t kMaxQueuedHours = 4;
  std::mutex mutex;
  std::condition_variable queue_ready;
  std::condition_variable queue_drained;
  std::deque<net::HourlyFlows> queue;
  bool producer_done = false;
  std::exception_ptr analyst_error;

  std::thread analyst([&] {
    for (;;) {
      net::HourlyFlows flows;
      {
        std::unique_lock<std::mutex> lock(mutex);
        queue_ready.wait(lock,
                         [&] { return !queue.empty() || producer_done; });
        if (queue.empty()) return;
        flows = std::move(queue.front());
        queue.pop_front();
      }
      queue_drained.notify_one();
      try {
        pipeline.observe(flows);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mutex);
          if (!analyst_error) analyst_error = std::current_exception();
        }
        queue_drained.notify_all();  // unblock a producer at the cap
        return;
      }
    }
  });

  telescope::TelescopeCapture capture(
      telescope::DarknetSpace(config.darknet),
      [&](net::HourlyFlows&& flows) {
        std::unique_lock<std::mutex> lock(mutex);
        queue_drained.wait(lock, [&] {
          return queue.size() < kMaxQueuedHours || analyst_error;
        });
        if (analyst_error) return;  // drop; the error surfaces below
        queue.push_back(std::move(flows));
        lock.unlock();
        queue_ready.notify_one();
      });
  const auto stats = workload::synthesize_into(scenario, config, capture);

  {
    std::lock_guard<std::mutex> lock(mutex);
    producer_done = true;
  }
  queue_ready.notify_one();
  analyst.join();
  if (analyst_error) std::rethrow_exception(analyst_error);
  return stats;
}

}  // namespace

std::size_t scaled_top_per_realm(const workload::ScenarioConfig& scenario) {
  return scenario.scaled_count(4000);
}

StudyResult run_study(const StudyConfig& config) {
  StudyResult result{
      workload::build_scenario(config.scenario), {}, {}, {}, {}, {}, {}};

  AnalysisPipeline pipeline(result.scenario.inventory, config.pipeline);
  result.synth_stats =
      synthesize_and_analyze(result.scenario, config.scenario, pipeline);
  result.report = pipeline.finalize();

  result.character = characterize(result.report, result.scenario.inventory);

  result.threats = intel::synthesize_threat_repository(
      result.scenario, config.scenario, config.threat);
  result.malware = intel::synthesize_malware_corpus(
      result.scenario, config.scenario, config.malware);

  MaliciousnessOptions mal_options;
  mal_options.top_per_realm = scaled_top_per_realm(config.scenario);
  result.malicious = analyze_maliciousness(
      result.report, result.scenario.inventory, result.threats,
      result.malware.database, result.malware.resolver, mal_options);

  IOTSCOPE_LOG_INFO(
      "study complete: %zu devices discovered, %llu IoT packets, %zu victims "
      "(%u analysis threads)",
      result.report.discovered_total(),
      static_cast<unsigned long long>(result.report.total_packets),
      result.report.dos_victims, pipeline.threads());
  return result;
}

}  // namespace iotscope::core
