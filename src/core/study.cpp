#include "core/study.hpp"

#include "telescope/capture.hpp"
#include "util/logging.hpp"

namespace iotscope::core {

std::size_t scaled_top_per_realm(const workload::ScenarioConfig& scenario) {
  return scenario.scaled_count(4000);
}

StudyResult run_study(const StudyConfig& config) {
  StudyResult result{
      workload::build_scenario(config.scenario), {}, {}, {}, {}, {}, {}};

  // Stream synthetic traffic through the telescope into the pipeline: the
  // capture engine aggregates packets into hourly flowtuples, and each
  // completed hour is fed straight to the analysis (no disk round-trip;
  // see FlowTupleStore for the persistent variant).
  AnalysisPipeline pipeline(result.scenario.inventory, config.pipeline);
  telescope::TelescopeCapture capture(
      telescope::DarknetSpace(config.scenario.darknet),
      [&pipeline](net::HourlyFlows&& flows) { pipeline.observe(flows); });
  result.synth_stats =
      workload::synthesize_into(result.scenario, config.scenario, capture);
  result.report = pipeline.finalize();

  result.character = characterize(result.report, result.scenario.inventory);

  result.threats = intel::synthesize_threat_repository(
      result.scenario, config.scenario, config.threat);
  result.malware = intel::synthesize_malware_corpus(
      result.scenario, config.scenario, config.malware);

  MaliciousnessOptions mal_options;
  mal_options.top_per_realm = scaled_top_per_realm(config.scenario);
  result.malicious = analyze_maliciousness(
      result.report, result.scenario.inventory, result.threats,
      result.malware.database, result.malware.resolver, mal_options);

  IOTSCOPE_LOG_INFO(
      "study complete: %zu devices discovered, %llu IoT packets, %zu victims",
      result.report.discovered_total(),
      static_cast<unsigned long long>(result.report.total_packets),
      result.report.dos_victims);
  return result;
}

}  // namespace iotscope::core
