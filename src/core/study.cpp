#include "core/study.hpp"

#include <exception>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "telescope/capture.hpp"
#include "util/bounded_queue.hpp"
#include "util/logging.hpp"

namespace iotscope::core {

namespace {

/// Streams synthetic traffic through the telescope into the pipeline.
///
/// Sequential pipelines observe each completed hour inline. Threaded
/// pipelines move analysis onto a dedicated consumer: the capture sink
/// enqueues completed hours into a small bounded queue, so packet
/// synthesis/aggregation of hour N+1 overlaps the sharded analysis of
/// hour N (fan-out inside observe(), fan-in here at the queue).
///
/// Error paths (DESIGN.md §8): if the analyst throws, it poisons the
/// queue — the producer's pushes start failing (hours are dropped),
/// synthesis winds down, and the analyst's original exception is
/// rethrown here. If synthesis itself throws, the join guard closes the
/// queue and joins the analyst before the exception propagates, so the
/// analyst is never left blocked on a queue nobody feeds (and the
/// std::thread is never destroyed joinable, which would terminate).
workload::SynthStats synthesize_and_analyze(
    const workload::Scenario& scenario, const workload::ScenarioConfig& config,
    AnalysisPipeline& pipeline) {
  if (pipeline.options().scheduler == ShardScheduler::Graph) {
    // Task-graph mode: no hand-off queue or analyst thread. Each
    // completed hour is submitted as a task subgraph; the scheduler's
    // credit window (PipelineOptions::max_inflight_hours) is the
    // backpressure that the bounded queue provides below, and hour N+1's
    // decode/classify overlaps hour N's observe/fan-in inside the
    // scheduler instead of across two threads. The mem-peak gauge tracks
    // the same quantity as the queue path — batch bytes submitted but
    // not yet fully folded — released by the after-hook, which runs on
    // every exit path (including an aborted hour after a task failure),
    // so a failed run leaves no residual in the gauge.
    auto& mem_gauge =
        obs::Registry::instance().gauge("pipeline.batch.mem_peak");
    telescope::TelescopeCapture capture(
        telescope::DarknetSpace(config.darknet), [&](net::FlowBatch&& batch) {
          const auto bytes = static_cast<std::int64_t>(batch.resident_bytes());
          mem_gauge.add(bytes);
          try {
            pipeline.observe_async(
                std::move(batch),
                [&mem_gauge, bytes](const net::FlowBatch&, bool /*ok*/) {
                  mem_gauge.add(-bytes);
                });
          } catch (...) {
            // A prior hour's task failure surfaces here before this hour
            // was submitted — its hook will never run, so release its
            // bytes before the error unwinds through synthesis.
            mem_gauge.add(-bytes);
            throw;
          }
        });
    const auto stats = workload::synthesize_into(scenario, config, capture);
    pipeline.drain();  // all hours folded; rethrows a task error here
    return stats;
  }

  if (pipeline.threads() <= 1) {
    telescope::TelescopeCapture capture(
        telescope::DarknetSpace(config.darknet),
        [&pipeline](net::FlowBatch&& batch) { pipeline.observe(batch); });
    return workload::synthesize_into(scenario, config, capture);
  }

  // Bounded hand-off queue: deep enough to ride out uneven hours, small
  // enough that at most a few hours of flowtuples are in flight. The
  // mem-peak gauge tracks how many batch bytes that actually is.
  constexpr std::size_t kMaxQueuedHours = 4;
  util::BoundedQueue<net::FlowBatch> queue(kMaxQueuedHours, "study.queue");
  auto& mem_gauge = obs::Registry::instance().gauge("pipeline.batch.mem_peak");

  std::exception_ptr analyst_error;
  std::thread analyst([&] {
    while (auto batch = queue.pop()) {
      const auto bytes = static_cast<std::int64_t>(batch->resident_bytes());
      try {
        pipeline.observe(*batch);
      } catch (...) {
        mem_gauge.add(-bytes);
        analyst_error = std::current_exception();
        queue.close();  // poison: producer pushes fail from here on
        return;
      }
      mem_gauge.add(-bytes);
    }
  });

  // Runs on every exit path, including a throwing synthesize_into: close
  // the queue so the analyst's pop() returns, then join. On the normal
  // path the explicit close/join below has already happened and the
  // guard's join degenerates to a no-op joinable() check. After the
  // join, drain whatever the analyst never popped — a dead analyst
  // strands already-enqueued hours, and destroying them without the
  // matching add(-bytes) would leave the mem gauge permanently high.
  struct JoinGuard {
    util::BoundedQueue<net::FlowBatch>& queue;
    std::thread& analyst;
    obs::Gauge& mem_gauge;
    ~JoinGuard() {
      queue.close();
      if (analyst.joinable()) analyst.join();
      while (auto batch = queue.pop()) {
        mem_gauge.add(-static_cast<std::int64_t>(batch->resident_bytes()));
      }
    }
  } guard{queue, analyst, mem_gauge};

  telescope::TelescopeCapture capture(
      telescope::DarknetSpace(config.darknet), [&](net::FlowBatch&& batch) {
        // Tag on the producer thread with the analyst's own taxonomy so
        // classification overlaps the analysis of the previous hour; the
        // recipe stamp lets observe() consume the column directly.
        classify_batch(batch, pipeline.options().taxonomy);
        const auto bytes = static_cast<std::int64_t>(batch.resident_bytes());
        mem_gauge.add(bytes);
        // A false return means the analyst died; the error surfaces
        // below, after synthesis winds down.
        if (!queue.push(std::move(batch))) mem_gauge.add(-bytes);
      });
  const auto stats = workload::synthesize_into(scenario, config, capture);

  queue.close();
  analyst.join();
  if (analyst_error) std::rethrow_exception(analyst_error);
  return stats;
}

}  // namespace

std::size_t scaled_top_per_realm(const workload::ScenarioConfig& scenario) {
  return scenario.scaled_count(4000);
}

StudyResult run_study(const StudyConfig& config) {
  obs::ScopedTimer study_timer(
      obs::Registry::instance().stage("study.run"));

  StudyResult result{
      workload::build_scenario(config.scenario), {}, {}, {}, {}, {}, {}};

  AnalysisPipeline pipeline(result.scenario.inventory, config.pipeline);
  if (config.discovery_sink) {
    pipeline.set_discovery_sink(config.discovery_sink);
  }
  result.synth_stats =
      synthesize_and_analyze(result.scenario, config.scenario, pipeline);
  result.report = pipeline.finalize();

  result.character = characterize(result.report, result.scenario.inventory);

  result.threats = intel::synthesize_threat_repository(
      result.scenario, config.scenario, config.threat);
  result.malware = intel::synthesize_malware_corpus(
      result.scenario, config.scenario, config.malware);

  MaliciousnessOptions mal_options;
  mal_options.top_per_realm = scaled_top_per_realm(config.scenario);
  result.malicious = analyze_maliciousness(
      result.report, result.scenario.inventory, result.threats,
      result.malware.database, result.malware.resolver, mal_options);

  IOTSCOPE_LOG_INFO(
      "study complete: %zu devices discovered, %llu IoT packets, %zu victims "
      "(%u analysis threads)",
      result.report.discovered_total(),
      static_cast<unsigned long long>(result.report.total_packets),
      result.report.dos_victims, pipeline.threads());
  return result;
}

}  // namespace iotscope::core
