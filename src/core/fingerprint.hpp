// Fuzzy behavioural fingerprinting of non-indexed IoT devices — the first
// of the two forward paths the paper's Discussion §VI lays out:
// "exploring fuzzy matching algorithms ... to identify a broader range of
// IoT devices (previously not indexed by Shodan) as perceived by the
// network telescope by leveraging IoT-relevant darknet traffic".
//
// The pipeline profiles every sustained non-inventory source
// (UnknownSourceProfile); the fingerprinter scores each profile by how
// IoT-like its behaviour is — the fraction of traffic aimed at ports that
// IoT malware families probe (Telnet 23/2323/23231, CWMP 7547, the Netis
// backdoor trio, camera/DVR ports) and its SYN-probing discipline — and
// surfaces candidates likely to be unindexed compromised IoT devices.
#pragma once

#include <cstdint>
#include <vector>

#include "core/report.hpp"

namespace iotscope::core {

/// True for ports associated with IoT-device exploitation in the study:
/// the Table V scanned services that Mirai-era malware targets plus the
/// Table IV IoT backdoor ports.
bool is_iot_associated_port(net::Port port) noexcept;

/// Scoring thresholds.
struct FingerprintOptions {
  /// Minimum share of a source's packets aimed at IoT-associated ports.
  double iot_port_share_threshold = 0.5;
  /// Minimum share of TCP SYN probes (IoT bots scan; servers reply).
  double syn_share_threshold = 0.5;
  /// Minimum packets over the window before a verdict is attempted.
  std::uint64_t min_packets = 20;
};

/// One fingerprinted candidate.
struct FingerprintCandidate {
  net::Ipv4Address ip;
  std::uint64_t packets = 0;
  double iot_port_share = 0.0;
  double syn_share = 0.0;
  int first_interval = -1;
  int last_interval = -1;
};

/// The fingerprinting result.
struct FingerprintReport {
  std::vector<FingerprintCandidate> candidates;  ///< descending by packets
  std::size_t profiles_considered = 0;  ///< unknown sources above the floor
  std::size_t profiles_below_min_packets = 0;
};

/// Scores the report's unknown-source profiles and returns the sources
/// whose behaviour matches the IoT-exploitation fingerprint.
FingerprintReport fingerprint_unindexed(const Report& report,
                                        const FingerprintOptions& options = {});

}  // namespace iotscope::core
