// Inventory-joined characterization of the inferred devices: the country,
// ISP, device-type, and CPS-protocol breakdowns behind Figures 1b and 3
// and Tables I-III, plus the deployed-inventory view of Figure 1a.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/report.hpp"
#include "inventory/database.hpp"

namespace iotscope::core {

/// Country-level deployment and compromise counts.
struct CountryRow {
  inventory::CountryId country = 0;
  std::size_t deployed_consumer = 0;
  std::size_t deployed_cps = 0;
  std::size_t compromised_consumer = 0;
  std::size_t compromised_cps = 0;

  std::size_t deployed() const noexcept {
    return deployed_consumer + deployed_cps;
  }
  std::size_t compromised() const noexcept {
    return compromised_consumer + compromised_cps;
  }
  /// Percent of the country's deployed devices that were compromised
  /// (the line series of Fig 1b).
  double pct_compromised() const noexcept {
    return deployed() == 0
               ? 0.0
               : 100.0 * static_cast<double>(compromised()) /
                     static_cast<double>(deployed());
  }
};

/// ISP-level compromised-device counts (Tables I and II).
struct IspRow {
  inventory::IspId isp = 0;
  std::size_t devices = 0;
};

/// The characterization result.
struct CharacterizationReport {
  /// All countries with at least one deployed device, descending by
  /// deployed count (Fig 1a's ordering).
  std::vector<CountryRow> by_country_deployed;
  /// Same rows, descending by compromised count (Fig 1b's ordering).
  std::vector<CountryRow> by_country_compromised;
  std::size_t countries_with_compromised = 0;

  /// ISPs hosting compromised consumer devices, descending (Table I).
  std::vector<IspRow> consumer_isps;
  /// ISPs hosting compromised CPS devices, descending (Table II).
  std::vector<IspRow> cps_isps;

  /// Compromised consumer devices by type (Fig 3).
  std::array<std::size_t, inventory::kConsumerTypeCount> consumer_types{};

  /// Compromised CPS devices by supported protocol, descending by count
  /// (Table III; services are not mutually exclusive).
  std::vector<std::pair<inventory::CpsProtocolId, std::size_t>> cps_protocols;
  std::size_t cps_protocols_in_use = 0;
};

/// Joins the discovered-device ledger with the inventory.
CharacterizationReport characterize(const Report& report,
                                    const inventory::IoTDeviceDatabase& db);

}  // namespace iotscope::core
