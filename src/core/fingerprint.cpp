#include "core/fingerprint.hpp"

#include <algorithm>

namespace iotscope::core {

bool is_iot_associated_port(net::Port port) noexcept {
  switch (port) {
    // Telnet family — the dominant Mirai-era credential-guessing target.
    case 23:
    case 2323:
    case 23231:
    // Alternative HTTP admin interfaces on routers/cameras.
    case 81:
    case 8080:
    // CWMP (TR-069) remote management, exploited by Mirai variants.
    case 7547:
    case 5358:
    // Netcore/Netis router backdoor ports (Table IV).
    case 37547:
    case 53413:
    case 32124:
    case 28183:
    // Camera/DVR surfaces.
    case 554:
    case 8000:
      return true;
    default:
      return false;
  }
}

FingerprintReport fingerprint_unindexed(const Report& report,
                                        const FingerprintOptions& options) {
  FingerprintReport out;
  out.profiles_considered = report.unknown_sources.size();
  for (const auto& profile : report.unknown_sources) {
    if (profile.packets < options.min_packets) {
      ++out.profiles_below_min_packets;
      continue;
    }
    const double total = static_cast<double>(profile.packets);
    const double iot_share =
        static_cast<double>(profile.iot_port_packets) / total;
    const double syn_share =
        static_cast<double>(profile.tcp_syn_packets) / total;
    if (iot_share < options.iot_port_share_threshold) continue;
    if (syn_share < options.syn_share_threshold) continue;
    out.candidates.push_back({profile.ip, profile.packets, iot_share,
                              syn_share, profile.first_interval,
                              profile.last_interval});
  }
  std::sort(out.candidates.begin(), out.candidates.end(),
            [](const FingerprintCandidate& a, const FingerprintCandidate& b) {
              return a.packets > b.packets;
            });
  return out;
}

}  // namespace iotscope::core
