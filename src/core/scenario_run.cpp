#include "core/scenario_run.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "core/characterize.hpp"
#include "core/report_text.hpp"
#include "core/stream.hpp"
#include "telescope/store.hpp"
#include "util/io.hpp"
#include "util/timebase.hpp"

namespace iotscope::core {

namespace {

PipelineOptions pipeline_options(const ScenarioRunOptions& options) {
  PipelineOptions popts;
  popts.scheduler = options.scheduler;
  popts.threads = options.threads;
  return popts;
}

std::string render(const Report& report,
                   const inventory::IoTDeviceDatabase& db) {
  const CharacterizationReport character = characterize(report, db);
  return render_inference_report(report, character, db) +
         render_traffic_report(report, db);
}

}  // namespace

ScenarioRunResult run_scenario(const workload::ScenarioEngine& engine,
                               const std::filesystem::path& dir,
                               const ScenarioRunOptions& options) {
  const telescope::FlowTupleStore store(dir);
  const inventory::IoTDeviceDatabase& db = engine.scenario().inventory;
  ScenarioRunResult result;

  if (options.follow) {
    // The daemon path: a writer thread rotates hourly files (hostile
    // ones included) into the directory while the streaming study
    // follows it from this thread — the same filesystem handshake a
    // real collection process and analysis daemon would use.
    StreamOptions sopts;
    sopts.snapshot_every = options.snapshot_every;
    sopts.evict_after_hours = options.evict_after_hours;
    StreamingStudy study(db, store, pipeline_options(options), sopts);
    std::atomic<bool> writer_done{false};
    std::thread writer([&] {
      result.write = engine.write_to_store(store);
      writer_done.store(true, std::memory_order_release);
    });
    study.follow(
        [&] { return writer_done.load(std::memory_order_acquire); });
    writer.join();
    result.report = study.finalize();
    result.hours_corrupt = study.stats().hours_corrupt;
  } else {
    result.write = engine.write_to_store(store);
    AnalysisPipeline pipeline(db, pipeline_options(options));
    const bool graph = options.scheduler == ShardScheduler::Graph;
    for (const int interval : store.intervals()) {
      std::optional<net::FlowBatch> batch;
      try {
        batch = store.get_batch(interval);
      } catch (const util::IoError&) {
        // Same quarantine discipline as the streaming study: a corrupt
        // hour is counted and skipped, and skipping is byte-equivalent
        // to the hour never having been published.
        ++result.hours_corrupt;
        continue;
      }
      if (!batch) continue;
      if (graph) {
        pipeline.observe_async(std::move(*batch));
      } else {
        pipeline.observe(*batch);
      }
    }
    if (graph) pipeline.drain();
    result.report = pipeline.finalize();
  }

  result.rendered = render(result.report, db);
  return result;
}

namespace {

/// Accumulates violations with printf-free formatting.
class Violations {
 public:
  std::ostringstream& add() {
    flush();
    open_ = true;
    return current_;
  }
  std::vector<std::string> take() {
    flush();
    return std::move(lines_);
  }

 private:
  void flush() {
    if (open_) lines_.push_back(current_.str());
    current_.str({});
    open_ = false;
  }
  std::ostringstream current_;
  bool open_ = false;
  std::vector<std::string> lines_;
};

}  // namespace

std::vector<std::string> check_scenario(const workload::ScenarioEngine& engine,
                                        const ScenarioRunResult& run,
                                        std::uint64_t floor) {
  const workload::ScenarioTruth& truth = engine.truth();
  const Report& report = run.report;
  Violations violations;

  const std::unordered_set<int> hostile(truth.hostile_hours.begin(),
                                        truth.hostile_hours.end());
  const int hours = util::AnalysisWindow::kHours;
  auto is_clean = [&](int h) { return hostile.find(h) == hostile.end(); };

  // ---- store / quarantine accounting ----
  if (run.write.corrupted_hours != truth.hostile_hours.size()) {
    violations.add() << "corrupted " << run.write.corrupted_hours
                     << " hours on disk, scripted "
                     << truth.hostile_hours.size();
  }
  if (run.hours_corrupt != truth.hostile_hours.size()) {
    violations.add() << "reader quarantined " << run.hours_corrupt
                     << " hours, scripted " << truth.hostile_hours.size();
  }

  // ---- conservation: everything folded is exactly the clean hours ----
  std::uint64_t clean_total = 0;
  for (const std::uint64_t packets : run.write.clean_hour_packets) {
    clean_total += packets;
  }
  if (report.total_packets + report.unattributed_packets != clean_total) {
    violations.add() << "report folds "
                     << report.total_packets + report.unattributed_packets
                     << " packets, clean hours hold " << clean_total;
  }

  // ---- unknown-source profile lookup (by IP) ----
  std::unordered_map<std::uint32_t, const UnknownSourceProfile*> unknown;
  unknown.reserve(report.unknown_sources.size());
  for (const UnknownSourceProfile& profile : report.unknown_sources) {
    unknown.emplace(profile.ip.value(), &profile);
  }
  /// Expected profile of a source emitting per_hour(h) packets: only
  /// hours at or above the promotion floor accumulate (matching the
  /// pipeline's per-hour promotion), hostile hours never fold.
  struct ExpectedProfile {
    std::uint64_t packets = 0;
    int first = -1;
    int last = -1;
  };
  auto expect_profile = [&](auto&& per_hour) {
    ExpectedProfile expected;
    for (int h = 0; h < hours; ++h) {
      if (!is_clean(h)) continue;
      const std::uint64_t count = per_hour(h);
      if (count < floor) continue;
      expected.packets += count;
      if (expected.first < 0) expected.first = h;
      expected.last = h;
    }
    return expected;
  };
  auto check_unknown = [&](net::Ipv4Address ip, const ExpectedProfile& expected,
                           const char* what) {
    const auto it = unknown.find(ip.value());
    if (expected.packets == 0) {
      if (it != unknown.end()) {
        violations.add() << what << " " << ip.value()
                         << ": profiled below the promotion floor";
      }
      return;
    }
    if (it == unknown.end()) {
      violations.add() << what << " " << ip.value() << ": no unknown profile";
      return;
    }
    const UnknownSourceProfile& profile = *it->second;
    if (profile.packets != expected.packets ||
        profile.first_interval != expected.first ||
        profile.last_interval != expected.last) {
      violations.add() << what << " " << ip.value() << ": profile "
                       << profile.packets << " pkts [" << profile.first_interval
                       << "," << profile.last_interval << "], expected "
                       << expected.packets << " pkts [" << expected.first << ","
                       << expected.last << "]";
    }
  };

  // ---- recruitment: each recruit's whole footprint is the campaign ----
  for (const workload::RecruitTruth& recruit : truth.recruits) {
    int first = -1, last = -1;
    std::uint64_t expected = 0;
    for (int h = recruit.infected_hour; h < hours; ++h) {
      if (!is_clean(h)) continue;
      expected += recruit.rate;
      if (first < 0) first = h;
      last = h;
    }
    const DeviceTraffic* traffic = report.traffic_for(recruit.device);
    if (!traffic) {
      violations.add() << "recruit device " << recruit.device
                       << ": never discovered";
      continue;
    }
    if (traffic->first_interval != first || traffic->last_interval != last ||
        traffic->packets != expected || traffic->tcp_scan != expected) {
      violations.add() << "recruit device " << recruit.device << ": ["
                       << traffic->first_interval << ","
                       << traffic->last_interval << "] " << traffic->packets
                       << " pkts (" << traffic->tcp_scan
                       << " scan), expected [" << first << "," << last << "] "
                       << expected;
    }
  }

  // ---- churn: attributed half ends at the churn hour, the reassigned
  // lease surfaces as an unknown source ----
  for (const workload::ChurnTruth& churned : truth.churned) {
    int first = -1, last = -1;
    std::uint64_t expected = 0;
    for (int h = churned.begin_hour; h < churned.churn_hour; ++h) {
      if (!is_clean(h)) continue;
      expected += churned.rate;
      if (first < 0) first = h;
      last = h;
    }
    const DeviceTraffic* traffic = report.traffic_for(churned.device);
    if (!traffic) {
      violations.add() << "churned device " << churned.device
                       << ": never discovered";
    } else if (traffic->first_interval != first ||
               traffic->last_interval != last || traffic->packets != expected) {
      violations.add() << "churned device " << churned.device << ": ["
                       << traffic->first_interval << ","
                       << traffic->last_interval << "] " << traffic->packets
                       << " pkts, expected [" << first << "," << last << "] "
                       << expected << " (device half must stop at churn)";
    }
    check_unknown(churned.new_ip, expect_profile([&](int h) -> std::uint64_t {
                    return h >= churned.churn_hour && h < churned.end_hour
                               ? churned.rate
                               : 0;
                  }),
                  "churned lease");
  }

  // ---- pulse-wave DoS: every clean on-interval is a detected spike
  // dominated by the scripted victim ----
  for (const workload::PulseTruth& pulse : truth.pulses) {
    std::uint64_t expected = 0;
    for (const int h : pulse.on_intervals) {
      if (is_clean(h)) expected += pulse.packets_per_on_hour;
    }
    const DeviceTraffic* traffic = report.traffic_for(pulse.device);
    if (!traffic) {
      violations.add() << "pulse victim " << pulse.device
                       << ": never discovered";
    } else if (traffic->tcp_backscatter != expected) {
      violations.add() << "pulse victim " << pulse.device << ": "
                       << traffic->tcp_backscatter
                       << " backscatter pkts, expected " << expected;
    }
    for (const int h : pulse.on_intervals) {
      if (!is_clean(h)) continue;
      const auto spike =
          std::find_if(report.dos_spikes.begin(), report.dos_spikes.end(),
                       [&](const DosSpike& s) { return s.interval == h; });
      if (spike == report.dos_spikes.end()) {
        violations.add() << "pulse victim " << pulse.device
                         << ": on-interval " << h << " not detected as a spike";
        continue;
      }
      if (spike->top_victim != pulse.device) {
        violations.add() << "spike at " << h << ": top victim "
                         << spike->top_victim << ", expected " << pulse.device;
      } else if (spike->top_victim_share <= 0.5) {
        violations.add() << "spike at " << h << ": victim share "
                         << spike->top_victim_share << " <= 0.5";
      }
    }
  }

  // ---- Zipf population: sources above the floor profile exactly, the
  // tail stays partial or absent, skew ordering survives inference ----
  const auto& zipf_counts = engine.zipf_hour_counts();
  std::uint64_t previous_total = 0;
  for (std::size_t i = 0; i < truth.zipf_sources.size(); ++i) {
    const workload::ZipfSourceTruth& source = truth.zipf_sources[i];
    const auto& counts = zipf_counts[i];
    const ExpectedProfile expected = expect_profile(
        [&](int h) { return counts[static_cast<std::size_t>(h)]; });
    check_unknown(source.ip, expected, "zipf source");
    // Within one campaign, ranks are consecutive and per-hour counts are
    // non-increasing in rank, so the profiled totals must be too.
    if (i > 0 && source.rank == truth.zipf_sources[i - 1].rank + 1 &&
        expected.packets > previous_total) {
      violations.add() << "zipf rank " << source.rank
                       << " profiles more packets than rank " << source.rank - 1
                       << " (skew ordering broken)";
    }
    previous_total = expected.packets;
  }

  return violations.take();
}

}  // namespace iotscope::core
