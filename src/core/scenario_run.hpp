// Driver and ground-truth checker for the adversarial scenario engine
// (workload/engine.hpp, DESIGN.md §17). run_scenario() executes one
// scenario end to end — write the hourly store (hostile hours included),
// analyze it in batch or by following it live, render the canonical
// report text — and check_scenario() compares the resulting report
// against the engine's exact campaign ledgers, returning one violation
// string per broken claim. Tests assert the violation list is empty and
// that the rendered text is byte-identical across every execution mode.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "workload/engine.hpp"

namespace iotscope::core {

/// How to execute a scenario run.
struct ScenarioRunOptions {
  /// false: write the whole store, then analyze it as a closed batch.
  /// true: a writer thread rotates hours in while a StreamingStudy
  /// follows the directory — the daemon path, including its corrupt-hour
  /// quarantine.
  bool follow = false;
  ShardScheduler scheduler = ShardScheduler::Stealing;
  unsigned threads = 0;  ///< 0 = auto
  /// Follow mode: StreamOptions::snapshot_every / evict_after_hours.
  int snapshot_every = 24;
  int evict_after_hours = 6;
};

/// Everything one scenario execution produced.
struct ScenarioRunResult {
  workload::ScenarioEngine::WriteResult write;  ///< what went to disk
  Report report;
  /// Hours whose file failed to decode and were quarantined — by the
  /// batch reader loop or by the streaming study, depending on the mode.
  std::uint64_t hours_corrupt = 0;
  /// Canonical rendered report (inference + traffic sections): the
  /// byte-identity witness across batch/follow × scheduler modes.
  std::string rendered;
};

/// Runs the scenario against a store rooted at `dir` (created if absent;
/// pre-existing hour files will collide — use a fresh directory).
/// Deterministic in the engine's script for every options combination.
ScenarioRunResult run_scenario(const workload::ScenarioEngine& engine,
                               const std::filesystem::path& dir,
                               const ScenarioRunOptions& options = {});

/// Checks the run against the engine's campaign ledgers. Returns one
/// human-readable violation per failed claim; empty means every claim
/// held. `floor` must match the pipeline's unknown_profile_hourly_floor
/// the run used (claims about unknown-source profiles depend on it).
std::vector<std::string> check_scenario(
    const workload::ScenarioEngine& engine, const ScenarioRunResult& run,
    std::uint64_t floor = PipelineOptions{}.unknown_profile_hourly_floor);

}  // namespace iotscope::core
