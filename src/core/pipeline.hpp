// The inference-and-characterization pipeline — the paper's core
// methodology. A single streaming pass over hourly flowtuple files:
// each flow's source IP is joined against the IoT inventory (correlation,
// Section III-B), classified by the darknet taxonomy (Section IV), and
// accumulated into every per-device, per-country, per-port, and per-hour
// aggregate the evaluation reports.
#pragma once

#include <array>
#include <bitset>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "core/classifier.hpp"
#include "core/notify.hpp"
#include "core/report.hpp"
#include "inventory/database.hpp"
#include "net/flowtuple.hpp"

namespace iotscope::core {

/// Pipeline options.
struct PipelineOptions {
  TaxonomyOptions taxonomy;
  /// Spike threshold for DoS-interval detection: an interval is a spike
  /// when its backscatter exceeds `spike_multiple` x the hourly mean.
  double spike_multiple = 3.0;
  /// Minimum packets within one hour before a non-inventory source is
  /// promoted to an UnknownSourceProfile (fingerprinting substrate); keeps
  /// one-packet background radiation out of memory.
  std::uint64_t unknown_profile_hourly_floor = 4;
};

/// Streaming analysis over hourly flowtuple files.
///
/// Usage: construct with the inventory, call observe() for each hour (in
/// any order; hours are independent except for per-hour distinct counts),
/// then finalize() exactly once to obtain the Report.
class AnalysisPipeline {
 public:
  explicit AnalysisPipeline(const inventory::IoTDeviceDatabase& db,
                            PipelineOptions options = {});
  ~AnalysisPipeline();

  AnalysisPipeline(const AnalysisPipeline&) = delete;
  AnalysisPipeline& operator=(const AnalysisPipeline&) = delete;

  /// Optional near-real-time sink invoked on each device's first
  /// sighting (see core/notify.hpp). Set before the first observe().
  void set_discovery_sink(DiscoverySink sink) { discovery_sink_ = std::move(sink); }

  /// Processes one hourly flowtuple file.
  void observe(const net::HourlyFlows& flows);

  /// Completes cross-hour statistics and returns the report. The pipeline
  /// must not be observed again afterwards.
  Report finalize();

  const inventory::IoTDeviceDatabase& database() const noexcept {
    return *db_;
  }

 private:
  struct Impl;

  DeviceTraffic& ledger_for(std::uint32_t device);

  const inventory::IoTDeviceDatabase* db_;
  PipelineOptions options_;
  Report report_;
  bool finalized_ = false;
  DiscoverySink discovery_sink_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace iotscope::core
