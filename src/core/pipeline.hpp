// The inference-and-characterization pipeline — the paper's core
// methodology. A streaming pass over hourly flowtuple files: each flow's
// source IP is joined against the IoT inventory (correlation, Section
// III-B), classified by the darknet taxonomy (Section IV), and
// accumulated into every per-device, per-country, per-port, and per-hour
// aggregate the evaluation reports.
//
// Threading model: each observe() call partitions the hour's records by
// source IP into N buckets (N = PipelineOptions::threads, default the
// hardware concurrency) and fans them out over N worker-owned
// accumulators (ShardState). The default scheduler chops the buckets into
// fixed-size morsels that workers pull with work stealing, so one
// heavy-hitter source that pins an entire bucket cannot idle the other
// workers; the static scheduler (one bucket per worker, no stealing) is
// kept as the before-variant. Under stealing any worker may touch any
// source, so every accumulated quantity is merged with commutative-exact
// operations only (integral sums, min/max, bitwise OR, set unions) and
// the per-hour fan-in plus finalize() reduce the partials in fixed shard
// order — the resulting Report is byte-identical across the sequential,
// static, and stealing paths at every thread count. All hourly series
// hold integral packet counts well below 2^53, so even the double
// accumulators are exact and order-insensitive.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "analysis/timeseries.hpp"
#include "core/classifier.hpp"
#include "core/notify.hpp"
#include "core/report.hpp"
#include "inventory/database.hpp"
#include "net/flow_batch.hpp"
#include "net/flowtuple.hpp"
#include "obs/metrics.hpp"
#include "util/flat_hash.hpp"
#include "util/task_scheduler.hpp"
#include "util/thread_pool.hpp"

namespace iotscope::core {

/// Records per stealing morsel. Small enough that an hour dominated by
/// one source still splits into hundreds of units across the workers;
/// large enough that the per-morsel scheduling cost (one CAS plus a
/// stage-timer read) is noise against 2k record walks. Exposed so the
/// benchmarks can compute the machine-independent load-balance model
/// (critical path ≈ records/threads + one trailing morsel).
inline constexpr std::uint32_t kMorselRecords = 2048;

/// How the threaded fan-out distributes partitioned records to workers.
enum class ShardScheduler {
  /// Buckets are chopped into fixed-size morsels pulled from per-worker
  /// deques with work stealing — a skewed partition (one hot source)
  /// drains across all workers instead of serializing on one.
  Stealing,
  /// One whole bucket per worker (the historical path): collapses to
  /// single-worker throughput when one source dominates the hour.
  Static,
  /// Task-graph execution over util::TaskScheduler (DESIGN.md §16):
  /// each hour is a dependency subgraph — decode parts, classify,
  /// partition, one observe task per morsel, fan-in — and observe_async
  /// lets hour N+1's decode/classify/partition run concurrently with
  /// hour N's observe/fan-in, bounded by the max-in-flight-hours
  /// credit. Synchronous observe() still works (the fan-out runs as a
  /// flat task batch). The Report is byte-identical to the other
  /// schedulers: out-of-order partial folds are legal because every
  /// merged quantity is commutative-exact and first sightings are
  /// min-tracked by (submission sequence, record index).
  Graph,
};

/// Pipeline options.
struct PipelineOptions {
  TaxonomyOptions taxonomy;
  /// Spike threshold for DoS-interval detection: an interval is a spike
  /// when its backscatter exceeds `spike_multiple` x the hourly mean.
  double spike_multiple = 3.0;
  /// Minimum packets within one hour before a non-inventory source is
  /// promoted to an UnknownSourceProfile (fingerprinting substrate); keeps
  /// one-packet background radiation out of memory.
  std::uint64_t unknown_profile_hourly_floor = 4;
  /// Number of analysis shards/worker threads. 0 = auto (the hardware
  /// concurrency); 1 = sequential. The Report is identical for every
  /// value — threads only trade wall-clock for cores.
  unsigned threads = 0;
  /// Worker scheduling policy for the threaded path (ignored when the
  /// resolved thread count is 1, except Graph, which degenerates to
  /// inline serial task execution). The Report is identical either way.
  ShardScheduler scheduler = ShardScheduler::Stealing;
  /// Graph scheduler only: how many hours may be in flight at once
  /// (decode/classify of later hours overlapping observe/fan-in of
  /// earlier ones). Bounds resident batch memory to this many hours;
  /// 1 disables cross-hour overlap without changing the task graph.
  unsigned max_inflight_hours = 3;
};

/// Streaming analysis over hourly flowtuple files.
///
/// Usage: construct with the inventory, call observe() for each hour (in
/// any order; hours are independent except for per-hour distinct counts),
/// then finalize() exactly once to obtain the Report.
class AnalysisPipeline {
 public:
  explicit AnalysisPipeline(const inventory::IoTDeviceDatabase& db,
                            PipelineOptions options = {});
  ~AnalysisPipeline();

  AnalysisPipeline(const AnalysisPipeline&) = delete;
  AnalysisPipeline& operator=(const AnalysisPipeline&) = delete;

  /// Optional near-real-time sink invoked on each device's first
  /// sighting (see core/notify.hpp). Set before the first observe().
  /// Invoked in record order, after the hour's shard fan-in — from the
  /// coordinating thread on the synchronous paths, or from the hour's
  /// fan-in task under the Graph scheduler (fan-ins of different hours
  /// never overlap, so the sink needs no locking either way).
  void set_discovery_sink(DiscoverySink sink) { discovery_sink_ = std::move(sink); }

  /// Processes one hourly flowtuple batch (fan-out across shards, fan-in
  /// of the hour's distinct-destination counts). The columnar hot path:
  /// one shared classification pass tags every record up front, then
  /// every shard walks the columns it needs. A batch whose tag_recipe
  /// matches this pipeline's TaxonomyOptions is consumed as-is (tag once
  /// where the batch is born); any other recipe — untagged included — is
  /// re-classified here, so foreign options never leak into the report.
  void observe(const net::FlowBatch& batch);

  /// AoS convenience: converts into a reused scratch batch and runs the
  /// columnar path. Splitting an hour across several HourlyFlows calls
  /// accumulates identically, as before.
  void observe(const net::HourlyFlows& flows);

  /// Retained AoS record walk (classify-at-point-of-use over the record
  /// structs, no shared tag column) — the pre-batch implementation, kept
  /// as the before-variant for bench_perf_micro and the batch/AoS
  /// equivalence test. Produces the identical Report.
  void observe_aos(const net::HourlyFlows& flows);

  /// Deferred decode of one slice of an hour (see
  /// telescope::FlowTupleStore::hour_loaders; any callable returning a
  /// FlowBatch works — tests use in-memory producers).
  using HourLoader = std::function<net::FlowBatch()>;

  /// Invoked when an asynchronously submitted hour has fully folded
  /// into the pipeline (its fan-in completed), before the next hour's
  /// observe tasks may start — so the hook can safely snapshot() or
  /// evict. `ok` is false when the pipeline has failed and the hour was
  /// skipped (drain() will rethrow the error). Under the Graph
  /// scheduler the hook runs on a scheduler lane; on the synchronous
  /// fallback it runs inline on the calling thread. Must not throw.
  using AfterHourHook = std::function<void(const net::FlowBatch&, bool ok)>;

  /// Asynchronous hour submission — the stage-overlap entry point
  /// (DESIGN.md §16). Under the Graph scheduler this enqueues the
  /// hour's task subgraph and returns once an in-flight-hours credit is
  /// available (max_inflight_hours bounds resident memory): hour N+1's
  /// decode/classify/partition tasks then run concurrently with hour
  /// N's observe/fan-in. Hours fold in submission order (the fan-in
  /// chain is fenced), so reports stay byte-identical to the
  /// synchronous schedulers. Under any other scheduler it degenerates
  /// to a synchronous observe() plus the hook — one code path for all
  /// callers. Call drain() before finalize()/snapshot() or reading
  /// hook-written state from the submitting thread.
  void observe_async(net::FlowBatch batch, AfterHourHook after = {});

  /// Loader variant: the hour's decode itself becomes parallel tasks
  /// (one per loader; compressed hours split at block boundaries) whose
  /// outputs are spliced in order before classification. An empty
  /// loader list (absent hour) is a no-op.
  void observe_async(std::vector<HourLoader> loaders, AfterHourHook after = {});

  /// Blocks until every asynchronously submitted hour has folded, and
  /// rethrows the first task error, if any. No-op on the synchronous
  /// schedulers, or when called from inside a scheduler task (the
  /// dependency chain already provides the ordering).
  void drain();

  /// Merges shard state (in fixed shard order), completes cross-hour
  /// statistics, and returns the report. The pipeline must not be
  /// observed again afterwards.
  Report finalize();

  /// Point-in-time report over everything observed so far, without
  /// consuming the pipeline: the same fixed-order commutative-exact
  /// reduction finalize() runs, but over copies — observe() may continue
  /// afterwards. A snapshot taken after the last observe() is
  /// byte-identical to finalize()'s report; this is what lets the
  /// streaming study publish periodic reports mid-run and still end on
  /// the exact batch report.
  Report snapshot() const;

  /// Moves unknown-source profiles whose last activity predates
  /// `before_interval` out of the hot per-source map into a compact
  /// frozen archive, and returns how many moved. Bounds the hot
  /// first-seen state a long-running stream keeps hashable; a frozen
  /// source that re-emerges is re-promoted into the hot map and the two
  /// partials are folded back per IP at report build with the same
  /// commutative-exact operations as every other merge (summed packet
  /// tallies, min first / max last interval) — eviction is invisible in
  /// the final report.
  std::size_t evict_idle_unknown_profiles(int before_interval);

  /// Unknown-source profiles currently resident in the hot map (the
  /// evictable working set; the frozen archive is not counted).
  std::size_t hot_unknown_profiles() const noexcept {
    return unknown_profiles_.size();
  }

  const inventory::IoTDeviceDatabase& database() const noexcept {
    return *db_;
  }

  const PipelineOptions& options() const noexcept { return options_; }

  /// Resolved shard/worker count (>= 1).
  unsigned threads() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

 private:
  struct ShardState;
  struct HourSlot;

  /// Per-hour tally for one non-inventory source; summed across workers
  /// at fan-in before the promotion floor is applied, so the floor sees
  /// the source's whole hour no matter how its records were scheduled.
  struct UnknownHourTally {
    std::uint64_t packets = 0;
    std::uint64_t tcp_syn = 0;
    std::uint64_t iot_port = 0;
  };

  /// One unit of stolen work: a contiguous slice of one partition
  /// bucket's record-index list.
  struct Morsel {
    std::uint32_t shard = 0;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };

  /// Stable source-IP -> shard assignment (multiplicative hash).
  std::size_t shard_of(std::uint32_t src) const noexcept;

  /// The full cross-hour reduction: copies the incrementally-maintained
  /// report, merges shard partials in fixed shard order into the copy,
  /// and completes every derived statistic. Const — shared by finalize()
  /// (which memoizes the result) and snapshot() (which does not).
  Report build_report() const;

  /// Shared fan-out/fan-in body, parameterized over the record access
  /// policy (columnar BatchView or AoS RowsView — both defined in
  /// pipeline.cpp, where every instantiation lives).
  template <typename View>
  void observe_view(View view, int interval);

  /// The per-hour cross-shard reduction (distinct-destination unions,
  /// scanner-device union, unknown-source promotion, first-sighting
  /// notifications). Runs after every shard/morsel task of the hour has
  /// completed — inline at the tail of observe_view, or as the hour's
  /// fan-in task under the Graph scheduler; fan-ins of different hours
  /// are serialized by the fence chain, so the coordinator-owned state
  /// it touches needs no locking.
  void fan_in_hour(int interval, bool collect_discoveries);

  /// Builds and enqueues one hour's task subgraph (Graph scheduler
  /// only). Blocks until an in-flight-hours credit is free.
  void submit_hour(net::FlowBatch batch, std::vector<HourLoader> loaders,
                   AfterHourHook after);

  /// Runs in the hour's fan-in task `finally` — also when fail-fast
  /// skipped the hour — so the after-hook, fence release, credit, and
  /// gauges always settle and a failed pipeline still drains.
  void finish_hour(HourSlot& slot);

  const inventory::IoTDeviceDatabase* db_;
  PipelineOptions options_;
  Report report_;
  bool finalized_ = false;
  DiscoverySink discovery_sink_;

  // Shared read-only lookup: dst port -> scan service row (-1 = unnamed).
  std::array<int, 65536> port_to_service_;
  int other_service_ = -1;

  // Observability handles (obs/metrics.hpp), looked up once here so the
  // per-hour paths never touch the registry mutex. Instrumentation is at
  // hour/morsel granularity — the per-record loops carry none.
  struct Obs {
    obs::Stage& observe;    ///< whole observe() call
    obs::Stage& classify;   ///< shared per-batch classification pass
    obs::Stage& partition;  ///< record partitioning (threaded path only)
    obs::Stage& shard;      ///< per-shard / per-morsel accumulation task
    obs::Stage& fanin;      ///< per-hour cross-shard union + notifications
    obs::Stage& finalize;   ///< finalize() total
    obs::Stage& merge;      ///< finalize()'s shard-ordered reduction
    obs::Counter& hours;    ///< observe() calls
    obs::Counter& records;  ///< flowtuple records seen
    obs::Counter& batch_records;  ///< records arriving as FlowBatch columns
    obs::Counter& batch_bytes;    ///< record payload bytes of those batches
    obs::Counter& morsel_claimed;  ///< morsels run from a worker's own slice
    obs::Counter& morsel_stolen;   ///< morsels obtained through stealing
    /// Partition imbalance per hour: max/mean bucket records x 100 (100 =
    /// perfectly even; threads x 100 = everything in one bucket). The
    /// snapshot max is the run's worst hour.
    obs::Gauge& shard_skew;
    /// High-water of batch bytes resident across the prefetch queue
    /// (written by FlowTupleStore::for_each; looked up here so every
    /// snapshot carries the gauge even on prefetch-free runs).
    obs::Gauge& batch_mem;
    /// Wall-clock span of each asynchronously submitted hour, from
    /// submission to fan-in completion. Overlap evidence: when hours
    /// overlap, the sum of these spans exceeds the run's wall clock
    /// (each span covers time shared with neighbouring hours).
    obs::Stage& overlap;
    /// Hours currently in flight under the Graph scheduler (submitted,
    /// fan-in not yet complete). The snapshot max is the run's deepest
    /// overlap — ≥ 2 proves hour N+1 was active while hour N folded.
    obs::Gauge& inflight_hours;
    Obs();
  };
  Obs obs_;

  std::vector<std::unique_ptr<ShardState>> shards_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< null when threads == 1
  std::uint32_t observe_seq_ = 0;  ///< observe() call counter (merge order)
  std::vector<std::vector<std::uint32_t>> partition_;  ///< per-shard record indices
  std::vector<Morsel> morsels_;                        ///< stealing work list, reused
  util::FlatSet<std::uint32_t> union_scratch_;         ///< fan-in dst-IP union
  analysis::HourlySeries scanners_per_hour_;  ///< coordinator-owned
  /// Devices already announced to the discovery sink. Under stealing a
  /// device's ledger can be created in several worker partials (even in
  /// different hours), so first-sighting dedup must be global.
  util::FlatSet<std::uint32_t> discovered_;
  /// Cross-hour unknown-source profiles, coordinator-owned: promotion
  /// happens at fan-in on the per-hour totals, never per worker.
  std::unordered_map<std::uint32_t, UnknownSourceProfile> unknown_profiles_;
  /// Profiles moved out of the hot map by evict_idle_unknown_profiles():
  /// append-only, never hashed again. Folded back with the hot map per IP
  /// when a report is built.
  std::vector<UnknownSourceProfile> frozen_unknown_;
  util::FlatMap<std::uint32_t, UnknownHourTally> unknown_scratch_;  ///< fan-in sum
  net::FlowBatch batch_scratch_;      ///< AoS observe() conversion, reused
  std::vector<ClassTag> tag_scratch_;  ///< per-batch tag column, reused

  // ---- Graph-scheduler state (null/empty otherwise) ----
  /// In-flight hour slots, reused round-robin (seq % size). Reuse is
  /// safe because fan-ins complete in submission order: the credit that
  /// admits hour N+k (k = slot count) is released by hour N's fan-in,
  /// and hour N is the slot's previous occupant.
  std::vector<std::unique_ptr<HourSlot>> hour_slots_;
  /// Fence released by the most recently submitted hour's fan-in; the
  /// next hour's plan task depends on it, serializing begin_hour/fan-in
  /// across hours while leaving decode/classify/partition free to
  /// overlap.
  util::TaskScheduler::TaskId fence_ = util::TaskScheduler::kNoTask;
  std::mutex credit_mutex_;
  std::condition_variable credit_cv_;
  unsigned credits_available_ = 0;
  /// Declared last so its destructor — which drains outstanding tasks,
  /// running or skipping them with their finally hooks, then joins the
  /// workers — runs before the hour slots and shard state those tasks
  /// reference are destroyed.
  std::unique_ptr<util::TaskScheduler> graph_;
};

}  // namespace iotscope::core
