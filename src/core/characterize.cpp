#include "core/characterize.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace iotscope::core {

CharacterizationReport characterize(const Report& report,
                                    const inventory::IoTDeviceDatabase& db) {
  CharacterizationReport out;
  const auto& catalog = db.catalog();

  std::vector<CountryRow> rows(catalog.countries().size());
  for (std::size_t c = 0; c < rows.size(); ++c) {
    rows[c].country = static_cast<inventory::CountryId>(c);
  }

  // Deployment view over the whole inventory.
  for (const auto& device : db.devices()) {
    auto& row = rows[device.country];
    if (device.is_consumer()) {
      ++row.deployed_consumer;
    } else {
      ++row.deployed_cps;
    }
  }

  // Compromised view over the discovered ledger.
  std::unordered_map<inventory::IspId, std::size_t> consumer_isps;
  std::unordered_map<inventory::IspId, std::size_t> cps_isps;
  std::unordered_map<inventory::CpsProtocolId, std::size_t> protocol_devices;

  for (const auto& ledger : report.devices) {
    const auto& device = db.devices()[ledger.device];
    auto& row = rows[device.country];
    if (device.is_consumer()) {
      ++row.compromised_consumer;
      ++consumer_isps[device.isp];
      ++out.consumer_types[static_cast<std::size_t>(device.consumer_type)];
    } else {
      ++row.compromised_cps;
      ++cps_isps[device.isp];
      for (const auto proto : device.services) ++protocol_devices[proto];
    }
  }

  for (const auto& row : rows) {
    if (row.compromised() > 0) ++out.countries_with_compromised;
  }

  out.by_country_deployed = rows;
  std::sort(out.by_country_deployed.begin(), out.by_country_deployed.end(),
            [](const CountryRow& a, const CountryRow& b) {
              return a.deployed() > b.deployed();
            });
  out.by_country_deployed.erase(
      std::remove_if(out.by_country_deployed.begin(),
                     out.by_country_deployed.end(),
                     [](const CountryRow& r) { return r.deployed() == 0; }),
      out.by_country_deployed.end());

  out.by_country_compromised = rows;
  std::sort(out.by_country_compromised.begin(),
            out.by_country_compromised.end(),
            [](const CountryRow& a, const CountryRow& b) {
              return a.compromised() > b.compromised();
            });
  out.by_country_compromised.erase(
      std::remove_if(out.by_country_compromised.begin(),
                     out.by_country_compromised.end(),
                     [](const CountryRow& r) { return r.compromised() == 0; }),
      out.by_country_compromised.end());

  auto to_sorted = [](const std::unordered_map<inventory::IspId, std::size_t>& m) {
    std::vector<IspRow> v;
    v.reserve(m.size());
    for (const auto& [isp, count] : m) v.push_back({isp, count});
    std::sort(v.begin(), v.end(), [](const IspRow& a, const IspRow& b) {
      if (a.devices != b.devices) return a.devices > b.devices;
      return a.isp < b.isp;
    });
    return v;
  };
  out.consumer_isps = to_sorted(consumer_isps);
  out.cps_isps = to_sorted(cps_isps);

  out.cps_protocols.assign(protocol_devices.begin(), protocol_devices.end());
  std::sort(out.cps_protocols.begin(), out.cps_protocols.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  out.cps_protocols_in_use = out.cps_protocols.size();

  return out;
}

}  // namespace iotscope::core
