// End-to-end study driver: regenerates the paper's whole experiment at a
// chosen scale — synthetic inventory, 143 hours of telescope traffic,
// streaming inference/characterization, and the Section V threat/malware
// correlations. This is the facade the examples and the bench harness
// build on; library users composing their own pipeline can use the
// individual modules directly.
#pragma once

#include "core/characterize.hpp"
#include "core/malicious.hpp"
#include "core/pipeline.hpp"
#include "intel/synth.hpp"
#include "workload/synth.hpp"

namespace iotscope::core {

/// Study configuration: scenario scale + pipeline options.
struct StudyConfig {
  workload::ScenarioConfig scenario;
  PipelineOptions pipeline;
  intel::ThreatSynthConfig threat;
  intel::MalwareSynthConfig malware;

  /// Optional near-real-time first-sighting sink (core/notify.hpp),
  /// forwarded to the pipeline before the first observe(). Runs on the
  /// analysis thread; an exception it throws aborts the study and is
  /// rethrown from run_study (see DESIGN.md §8 error propagation).
  DiscoverySink discovery_sink;

  /// Convenience: the default bench scale (1/50 of the paper's traffic,
  /// full device population scaled to 10%) finishing in seconds.
  static StudyConfig bench_default() {
    StudyConfig config;
    config.scenario.inventory_scale = 0.10;
    config.scenario.traffic_scale = 0.02;
    config.malware.corpus_size = 500;
    return config;
  }

  /// A small configuration for unit/integration tests.
  static StudyConfig test_default() {
    StudyConfig config;
    config.scenario.inventory_scale = 0.02;
    config.scenario.traffic_scale = 0.004;
    config.scenario.noise_ratio = 0.05;
    config.malware.corpus_size = 120;
    return config;
  }
};

/// Everything a full run produces.
struct StudyResult {
  workload::Scenario scenario;       ///< inventory + ground truth
  workload::SynthStats synth_stats;  ///< emitted-traffic ground truth
  Report report;                     ///< inference + characterization
  CharacterizationReport character;  ///< country/ISP/type/protocol joins
  intel::ThreatRepository threats;
  intel::MalwareCorpus malware;
  MaliciousnessReport malicious;
};

/// Runs the whole study in memory. Deterministic in the config.
StudyResult run_study(const StudyConfig& config);

/// Scaled top-per-realm explored quota used by run_study (4,000 at full
/// scale, proportional below).
std::size_t scaled_top_per_realm(const workload::ScenarioConfig& scenario);

}  // namespace iotscope::core
