#include "core/report_text.hpp"

#include "analysis/table.hpp"
#include "util/strings.hpp"
#include "workload/spec.hpp"

namespace iotscope::core {

namespace {
std::string pct_of(double num, double den, int decimals = 1) {
  return util::percent(den > 0 ? 100.0 * num / den : 0.0, decimals);
}
}  // namespace

std::string render_inference_report(const Report& report,
                                    const CharacterizationReport& character,
                                    const inventory::IoTDeviceDatabase& db,
                                    const ReportTextOptions& options) {
  std::string out;
  out += "== Inference: compromised IoT devices ==\n";
  out += "discovered: " + util::with_commas(report.discovered_total()) + " (" +
         util::with_commas(report.discovered_consumer) + " consumer / " +
         util::with_commas(report.discovered_cps) + " CPS) across " +
         std::to_string(character.countries_with_compromised) + " countries\n";

  out += "\n-- discovery curve (cumulative by day) --\n";
  {
    analysis::TextTable table({"Day", "All", "Consumer", "CPS"});
    for (int d = 0; d < 6; ++d) {
      const auto consumer =
          report.cumulative_by_day_consumer[static_cast<std::size_t>(d)];
      const auto cps = report.cumulative_by_day_cps[static_cast<std::size_t>(d)];
      table.add_row({util::format_window_day(d),
                     util::with_commas(consumer + cps),
                     util::with_commas(consumer), util::with_commas(cps)});
    }
    out += table.render();
  }

  out += "\n-- top countries by compromised devices --\n";
  {
    analysis::TextTable table({"Country", "Devices", "CPS", "Consumer",
                               "% of fleet"});
    for (std::size_t i = 0; i < character.by_country_compromised.size() &&
                            i < options.top_countries;
         ++i) {
      const auto& row = character.by_country_compromised[i];
      table.add_row({db.country_name(row.country),
                     util::with_commas(row.compromised()),
                     util::with_commas(row.compromised_cps),
                     util::with_commas(row.compromised_consumer),
                     util::percent(row.pct_compromised())});
    }
    out += table.render();
  }

  out += "\n-- top ISPs (consumer / CPS) --\n";
  {
    analysis::TextTable table({"Realm", "ISP", "Country", "Devices"});
    for (std::size_t i = 0;
         i < character.consumer_isps.size() && i < options.top_isps; ++i) {
      const auto& row = character.consumer_isps[i];
      table.add_row({"Consumer", db.isp_name(row.isp),
                     db.country_name(db.isps()[row.isp].country),
                     util::with_commas(row.devices)});
    }
    for (std::size_t i = 0;
         i < character.cps_isps.size() && i < options.top_isps; ++i) {
      const auto& row = character.cps_isps[i];
      table.add_row({"CPS", db.isp_name(row.isp),
                     db.country_name(db.isps()[row.isp].country),
                     util::with_commas(row.devices)});
    }
    out += table.render();
  }

  out += "\n-- compromised consumer devices by type --\n";
  {
    double total = 0;
    for (const auto count : character.consumer_types) {
      total += static_cast<double>(count);
    }
    analysis::TextTable table({"Type", "Devices", "Share"});
    for (int t = 0; t < inventory::kConsumerTypeCount; ++t) {
      const auto count = character.consumer_types[static_cast<std::size_t>(t)];
      table.add_row(
          {inventory::to_string(static_cast<inventory::ConsumerType>(t)),
           util::with_commas(count), pct_of(static_cast<double>(count), total)});
    }
    out += table.render();
  }

  out += "\n-- CPS protocols among compromised devices --\n";
  {
    analysis::TextTable table({"Protocol", "Devices", "% of CPS"});
    for (std::size_t i = 0; i < character.cps_protocols.size() &&
                            i < options.top_protocols;
         ++i) {
      const auto& [proto, count] = character.cps_protocols[i];
      table.add_row({db.catalog().cps_protocol_name(proto),
                     util::with_commas(count),
                     pct_of(static_cast<double>(count),
                            static_cast<double>(report.discovered_cps))});
    }
    out += table.render();
  }
  return out;
}

std::string render_traffic_report(const Report& report,
                                  const inventory::IoTDeviceDatabase& db,
                                  const ReportTextOptions& options) {
  std::string out;
  const double total = static_cast<double>(report.total_packets);
  out += "== Traffic characterization ==\n";
  out += "IoT packets: " + util::human_count(total) + "; unattributed: " +
         util::human_count(static_cast<double>(report.unattributed_packets)) +
         "\n";

  out += "\n-- protocol mix by realm (% of IoT traffic) --\n";
  {
    analysis::TextTable table({"Protocol", "CPS", "Consumer"});
    table.add_row({"TCP",
                   pct_of(static_cast<double>(report.tcp_packets.cps), total),
                   pct_of(static_cast<double>(report.tcp_packets.consumer), total)});
    table.add_row({"UDP",
                   pct_of(static_cast<double>(report.udp_packets.cps), total),
                   pct_of(static_cast<double>(report.udp_packets.consumer), total)});
    table.add_row({"ICMP",
                   pct_of(static_cast<double>(report.icmp_packets.cps), total),
                   pct_of(static_cast<double>(report.icmp_packets.consumer), total)});
    out += table.render();
  }

  out += "\n-- top targeted UDP ports --\n";
  {
    analysis::TextTable table({"Port", "Packets", "% of UDP", "Devices"});
    for (std::size_t i = 0; i < report.udp_top_ports.size() && i < 10; ++i) {
      const auto& row = report.udp_top_ports[i];
      table.add_row({std::to_string(row.port), util::with_commas(row.packets),
                     pct_of(static_cast<double>(row.packets),
                            static_cast<double>(report.udp_total_packets), 2),
                     util::with_commas(row.devices)});
    }
    out += table.render();
  }

  out += "\n-- scanned services --\n";
  {
    analysis::TextTable table(
        {"Service", "Packets", "% of scans", "Consumer dev", "CPS dev"});
    for (std::size_t s = 0; s < report.scan_services.size() &&
                            s < options.top_services;
         ++s) {
      const auto& svc = report.scan_services[s];
      table.add_row({svc.name, util::with_commas(svc.packets),
                     pct_of(static_cast<double>(svc.packets),
                            static_cast<double>(report.tcp_scan_total)),
                     std::to_string(svc.consumer_devices),
                     std::to_string(svc.cps_devices)});
    }
    out += table.render();
  }

  if (options.include_dos_narrative && !report.dos_spikes.empty()) {
    out += "\n-- inferred DoS attack intervals --\n";
    for (const auto& spike : report.dos_spikes) {
      const auto& victim = db.devices()[spike.top_victim];
      out += "hour " + std::to_string(spike.interval + 1) + ": " +
             util::with_commas(
                 static_cast<std::uint64_t>(spike.backscatter_packets)) +
             " backscatter pkts, " +
             util::percent(100.0 * spike.top_victim_share) + " from one " +
             inventory::to_string(victim.category) + " device in " +
             db.country_name(victim.country) + "\n";
    }
  }
  out += "\nDoS victims: " + std::to_string(report.dos_victims) + " (" +
         std::to_string(report.dos_victims_cps) + " CPS), backscatter " +
         util::human_count(static_cast<double>(report.backscatter_total)) +
         " (" +
         pct_of(static_cast<double>(report.backscatter_packets.cps),
                static_cast<double>(report.backscatter_total)) +
         " from CPS)\n";
  return out;
}

std::string render_maliciousness_report(const MaliciousnessReport& malicious) {
  std::string out;
  out += "== Maliciousness ==\n";
  out += "explored: " + std::to_string(malicious.explored_devices) +
         " devices; flagged by threat intel: " +
         std::to_string(malicious.flagged_devices) + " (" +
         pct_of(static_cast<double>(malicious.flagged_devices),
                static_cast<double>(malicious.explored_devices)) +
         ")\n";
  {
    analysis::TextTable table({"Threat category", "Devices"});
    for (int c = 0; c < intel::kThreatCategoryCount; ++c) {
      table.add_row(
          {intel::to_string(static_cast<intel::ThreatCategory>(c)),
           std::to_string(
               malicious.category_devices[static_cast<std::size_t>(c)])});
    }
    out += table.render();
  }
  out += "malware-linked: " + std::to_string(malicious.malware_cps) +
         " CPS + " + std::to_string(malicious.malware_consumer) +
         " consumer devices\n";
  out += "sandbox correlation: " +
         std::to_string(malicious.devices_in_reports) + " devices, " +
         std::to_string(malicious.unique_hashes) + " hashes, " +
         std::to_string(malicious.domains) + " domains\n";
  out += "families:";
  for (const auto& family : malicious.families) out += " " + family;
  out += "\n";
  return out;
}

}  // namespace iotscope::core
