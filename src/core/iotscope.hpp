// Umbrella header for the iotscope public API.
//
// iotscope reproduces the DSN'18 study "Inferring, Characterizing, and
// Investigating Internet-Scale Malicious IoT Device Activities: A Network
// Telescope Perspective" as a reusable C++ library:
//
//   net/        packet, flowtuple, and pcap substrates
//   telescope/  darknet capture and hourly flowtuple storage
//   inventory/  Shodan-style IoT device database (+ synthesizer)
//   workload/   scenario ground truth and traffic synthesis
//   intel/      threat repository and sandbox malware database
//   analysis/   statistics (Mann-Whitney U, Pearson, ECDF, series)
//   core/       the inference/characterization pipeline and study driver
//
// Quick start (see examples/quickstart.cpp):
//
//   iotscope::core::StudyConfig config =
//       iotscope::core::StudyConfig::bench_default();
//   auto result = iotscope::core::run_study(config);
//   // result.report, result.character, result.malicious ...
#pragma once

#include "core/characterize.hpp"
#include "core/classifier.hpp"
#include "core/malicious.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
