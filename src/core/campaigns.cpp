#include "core/campaigns.hpp"

#include <algorithm>

#include "workload/spec.hpp"

namespace iotscope::core {

CampaignReport cluster_campaigns(const Report& report,
                                 const inventory::IoTDeviceDatabase& db,
                                 const CampaignOptions& options) {
  CampaignReport out;
  const auto& services = workload::scan_services();

  // Bucket qualifying scanners by their dominant service.
  struct Member {
    const DeviceTraffic* ledger;
    int first;
    int last;
  };
  std::vector<std::vector<Member>> by_service(services.size());
  for (const auto& ledger : report.devices) {
    const int service = ledger.dominant_scan_service();
    if (service < 0 ||
        static_cast<std::size_t>(service) >= services.size()) {
      continue;
    }
    if (ledger.scan_by_service[static_cast<std::size_t>(service)] <
        options.min_device_packets) {
      ++out.devices_unclustered;
      continue;
    }
    by_service[static_cast<std::size_t>(service)].push_back(
        {&ledger, std::max(0, ledger.first_interval),
         std::max(0, ledger.last_interval)});
  }

  // Within each service, sweep members by window start and merge those
  // whose windows touch the campaign's running window (within the gap).
  for (std::size_t s = 0; s < by_service.size(); ++s) {
    auto& members = by_service[s];
    if (members.empty()) continue;
    std::sort(members.begin(), members.end(),
              [](const Member& a, const Member& b) {
                if (a.first != b.first) return a.first < b.first;
                return a.last < b.last;
              });

    Campaign current;
    auto flush = [&]() {
      if (current.devices.size() >= options.min_campaign_devices) {
        out.devices_clustered += current.devices.size();
        out.campaigns.push_back(std::move(current));
      } else {
        out.devices_unclustered += current.devices.size();
      }
      current = Campaign{};
    };

    for (const auto& member : members) {
      if (!current.devices.empty() &&
          member.first > current.end_interval + options.max_window_gap) {
        flush();
      }
      if (current.devices.empty()) {
        current.service = static_cast<int>(s);
        current.service_name = services[s].name;
        current.start_interval = member.first;
        current.end_interval = member.last;
      }
      current.start_interval = std::min(current.start_interval, member.first);
      current.end_interval = std::max(current.end_interval, member.last);
      current.devices.push_back(member.ledger->device);
      current.packets += member.ledger->scan_by_service[s];
      if (db.devices()[member.ledger->device].is_consumer()) {
        ++current.consumer_devices;
      }
    }
    flush();
  }

  std::sort(out.campaigns.begin(), out.campaigns.end(),
            [](const Campaign& a, const Campaign& b) {
              return a.packets > b.packets;
            });
  return out;
}

}  // namespace iotscope::core
