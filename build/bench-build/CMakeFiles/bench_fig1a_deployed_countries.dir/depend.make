# Empty dependencies file for bench_fig1a_deployed_countries.
# This may be replaced when dependencies are built.
