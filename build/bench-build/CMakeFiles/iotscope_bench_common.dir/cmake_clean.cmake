file(REMOVE_RECURSE
  "CMakeFiles/iotscope_bench_common.dir/common.cpp.o"
  "CMakeFiles/iotscope_bench_common.dir/common.cpp.o.d"
  "libiotscope_bench_common.a"
  "libiotscope_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotscope_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
