file(REMOVE_RECURSE
  "libiotscope_bench_common.a"
)
