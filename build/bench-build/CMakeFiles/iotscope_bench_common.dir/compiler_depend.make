# Empty compiler generated dependencies file for iotscope_bench_common.
# This may be replaced when dependencies are built.
