# Empty dependencies file for bench_tab3_cps_protocols.
# This may be replaced when dependencies are built.
