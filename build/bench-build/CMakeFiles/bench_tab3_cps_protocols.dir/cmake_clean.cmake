file(REMOVE_RECURSE
  "../bench/bench_tab3_cps_protocols"
  "../bench/bench_tab3_cps_protocols.pdb"
  "CMakeFiles/bench_tab3_cps_protocols.dir/bench_tab3_cps_protocols.cpp.o"
  "CMakeFiles/bench_tab3_cps_protocols.dir/bench_tab3_cps_protocols.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_cps_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
