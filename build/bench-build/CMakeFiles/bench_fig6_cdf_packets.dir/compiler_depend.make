# Empty compiler generated dependencies file for bench_fig6_cdf_packets.
# This may be replaced when dependencies are built.
