file(REMOVE_RECURSE
  "../bench/bench_fig6_cdf_packets"
  "../bench/bench_fig6_cdf_packets.pdb"
  "CMakeFiles/bench_fig6_cdf_packets.dir/bench_fig6_cdf_packets.cpp.o"
  "CMakeFiles/bench_fig6_cdf_packets.dir/bench_fig6_cdf_packets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cdf_packets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
