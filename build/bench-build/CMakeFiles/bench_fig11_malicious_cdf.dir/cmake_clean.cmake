file(REMOVE_RECURSE
  "../bench/bench_fig11_malicious_cdf"
  "../bench/bench_fig11_malicious_cdf.pdb"
  "CMakeFiles/bench_fig11_malicious_cdf.dir/bench_fig11_malicious_cdf.cpp.o"
  "CMakeFiles/bench_fig11_malicious_cdf.dir/bench_fig11_malicious_cdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_malicious_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
