file(REMOVE_RECURSE
  "../bench/bench_fig8_dos_countries"
  "../bench/bench_fig8_dos_countries.pdb"
  "CMakeFiles/bench_fig8_dos_countries.dir/bench_fig8_dos_countries.cpp.o"
  "CMakeFiles/bench_fig8_dos_countries.dir/bench_fig8_dos_countries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_dos_countries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
