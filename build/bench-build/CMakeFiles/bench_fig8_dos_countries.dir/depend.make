# Empty dependencies file for bench_fig8_dos_countries.
# This may be replaced when dependencies are built.
