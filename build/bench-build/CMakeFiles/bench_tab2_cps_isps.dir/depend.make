# Empty dependencies file for bench_tab2_cps_isps.
# This may be replaced when dependencies are built.
