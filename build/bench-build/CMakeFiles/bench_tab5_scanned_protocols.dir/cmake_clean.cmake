file(REMOVE_RECURSE
  "../bench/bench_tab5_scanned_protocols"
  "../bench/bench_tab5_scanned_protocols.pdb"
  "CMakeFiles/bench_tab5_scanned_protocols.dir/bench_tab5_scanned_protocols.cpp.o"
  "CMakeFiles/bench_tab5_scanned_protocols.dir/bench_tab5_scanned_protocols.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_scanned_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
