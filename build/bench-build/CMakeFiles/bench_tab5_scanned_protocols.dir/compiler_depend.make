# Empty compiler generated dependencies file for bench_tab5_scanned_protocols.
# This may be replaced when dependencies are built.
