# Empty dependencies file for bench_fig3_consumer_types.
# This may be replaced when dependencies are built.
