file(REMOVE_RECURSE
  "../bench/bench_fig9_scan_timeseries"
  "../bench/bench_fig9_scan_timeseries.pdb"
  "CMakeFiles/bench_fig9_scan_timeseries.dir/bench_fig9_scan_timeseries.cpp.o"
  "CMakeFiles/bench_fig9_scan_timeseries.dir/bench_fig9_scan_timeseries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_scan_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
