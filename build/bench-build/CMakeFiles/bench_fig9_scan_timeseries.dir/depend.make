# Empty dependencies file for bench_fig9_scan_timeseries.
# This may be replaced when dependencies are built.
