# Empty compiler generated dependencies file for bench_tab6_threat_categories.
# This may be replaced when dependencies are built.
