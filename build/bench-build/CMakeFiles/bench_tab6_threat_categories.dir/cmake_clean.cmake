file(REMOVE_RECURSE
  "../bench/bench_tab6_threat_categories"
  "../bench/bench_tab6_threat_categories.pdb"
  "CMakeFiles/bench_tab6_threat_categories.dir/bench_tab6_threat_categories.cpp.o"
  "CMakeFiles/bench_tab6_threat_categories.dir/bench_tab6_threat_categories.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab6_threat_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
