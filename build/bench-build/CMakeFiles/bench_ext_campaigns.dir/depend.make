# Empty dependencies file for bench_ext_campaigns.
# This may be replaced when dependencies are built.
