file(REMOVE_RECURSE
  "../bench/bench_ext_campaigns"
  "../bench/bench_ext_campaigns.pdb"
  "CMakeFiles/bench_ext_campaigns.dir/bench_ext_campaigns.cpp.o"
  "CMakeFiles/bench_ext_campaigns.dir/bench_ext_campaigns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_campaigns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
