file(REMOVE_RECURSE
  "../bench/bench_ablation_taxonomy"
  "../bench/bench_ablation_taxonomy.pdb"
  "CMakeFiles/bench_ablation_taxonomy.dir/bench_ablation_taxonomy.cpp.o"
  "CMakeFiles/bench_ablation_taxonomy.dir/bench_ablation_taxonomy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
