# Empty compiler generated dependencies file for bench_ablation_taxonomy.
# This may be replaced when dependencies are built.
