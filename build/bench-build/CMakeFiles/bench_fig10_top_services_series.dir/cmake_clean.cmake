file(REMOVE_RECURSE
  "../bench/bench_fig10_top_services_series"
  "../bench/bench_fig10_top_services_series.pdb"
  "CMakeFiles/bench_fig10_top_services_series.dir/bench_fig10_top_services_series.cpp.o"
  "CMakeFiles/bench_fig10_top_services_series.dir/bench_fig10_top_services_series.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_top_services_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
