# Empty compiler generated dependencies file for bench_fig10_top_services_series.
# This may be replaced when dependencies are built.
