
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_discovery_curve.cpp" "bench-build/CMakeFiles/bench_fig2_discovery_curve.dir/bench_fig2_discovery_curve.cpp.o" "gcc" "bench-build/CMakeFiles/bench_fig2_discovery_curve.dir/bench_fig2_discovery_curve.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/iotscope_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/iotscope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/intel/CMakeFiles/iotscope_intel.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/iotscope_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/iotscope_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/inventory/CMakeFiles/iotscope_inventory.dir/DependInfo.cmake"
  "/root/repo/build/src/telescope/CMakeFiles/iotscope_telescope.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iotscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iotscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
