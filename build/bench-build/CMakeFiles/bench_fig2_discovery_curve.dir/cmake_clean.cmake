file(REMOVE_RECURSE
  "../bench/bench_fig2_discovery_curve"
  "../bench/bench_fig2_discovery_curve.pdb"
  "CMakeFiles/bench_fig2_discovery_curve.dir/bench_fig2_discovery_curve.cpp.o"
  "CMakeFiles/bench_fig2_discovery_curve.dir/bench_fig2_discovery_curve.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_discovery_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
