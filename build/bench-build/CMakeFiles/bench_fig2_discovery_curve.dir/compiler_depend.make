# Empty compiler generated dependencies file for bench_fig2_discovery_curve.
# This may be replaced when dependencies are built.
