# Empty dependencies file for bench_fig4_protocol_mix.
# This may be replaced when dependencies are built.
