# Empty compiler generated dependencies file for bench_stats_summary.
# This may be replaced when dependencies are built.
