file(REMOVE_RECURSE
  "../bench/bench_stats_summary"
  "../bench/bench_stats_summary.pdb"
  "CMakeFiles/bench_stats_summary.dir/bench_stats_summary.cpp.o"
  "CMakeFiles/bench_stats_summary.dir/bench_stats_summary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stats_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
