file(REMOVE_RECURSE
  "../bench/bench_tab1_consumer_isps"
  "../bench/bench_tab1_consumer_isps.pdb"
  "CMakeFiles/bench_tab1_consumer_isps.dir/bench_tab1_consumer_isps.cpp.o"
  "CMakeFiles/bench_tab1_consumer_isps.dir/bench_tab1_consumer_isps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_consumer_isps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
