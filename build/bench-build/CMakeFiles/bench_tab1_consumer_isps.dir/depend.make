# Empty dependencies file for bench_tab1_consumer_isps.
# This may be replaced when dependencies are built.
