file(REMOVE_RECURSE
  "../bench/bench_ext_fingerprint"
  "../bench/bench_ext_fingerprint.pdb"
  "CMakeFiles/bench_ext_fingerprint.dir/bench_ext_fingerprint.cpp.o"
  "CMakeFiles/bench_ext_fingerprint.dir/bench_ext_fingerprint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
