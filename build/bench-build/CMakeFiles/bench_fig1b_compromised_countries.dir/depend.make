# Empty dependencies file for bench_fig1b_compromised_countries.
# This may be replaced when dependencies are built.
