file(REMOVE_RECURSE
  "../bench/bench_fig1b_compromised_countries"
  "../bench/bench_fig1b_compromised_countries.pdb"
  "CMakeFiles/bench_fig1b_compromised_countries.dir/bench_fig1b_compromised_countries.cpp.o"
  "CMakeFiles/bench_fig1b_compromised_countries.dir/bench_fig1b_compromised_countries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1b_compromised_countries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
