# Empty compiler generated dependencies file for bench_tab4_udp_ports.
# This may be replaced when dependencies are built.
