file(REMOVE_RECURSE
  "../bench/bench_tab4_udp_ports"
  "../bench/bench_tab4_udp_ports.pdb"
  "CMakeFiles/bench_tab4_udp_ports.dir/bench_tab4_udp_ports.cpp.o"
  "CMakeFiles/bench_tab4_udp_ports.dir/bench_tab4_udp_ports.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_udp_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
