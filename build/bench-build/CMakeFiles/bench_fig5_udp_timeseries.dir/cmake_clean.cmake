file(REMOVE_RECURSE
  "../bench/bench_fig5_udp_timeseries"
  "../bench/bench_fig5_udp_timeseries.pdb"
  "CMakeFiles/bench_fig5_udp_timeseries.dir/bench_fig5_udp_timeseries.cpp.o"
  "CMakeFiles/bench_fig5_udp_timeseries.dir/bench_fig5_udp_timeseries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_udp_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
