# Empty compiler generated dependencies file for net_prefix_map_test.
# This may be replaced when dependencies are built.
