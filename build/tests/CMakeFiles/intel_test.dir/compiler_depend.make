# Empty compiler generated dependencies file for intel_test.
# This may be replaced when dependencies are built.
