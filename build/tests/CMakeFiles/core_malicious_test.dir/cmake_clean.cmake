file(REMOVE_RECURSE
  "CMakeFiles/core_malicious_test.dir/core_malicious_test.cpp.o"
  "CMakeFiles/core_malicious_test.dir/core_malicious_test.cpp.o.d"
  "core_malicious_test"
  "core_malicious_test.pdb"
  "core_malicious_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_malicious_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
