# Empty dependencies file for core_malicious_test.
# This may be replaced when dependencies are built.
