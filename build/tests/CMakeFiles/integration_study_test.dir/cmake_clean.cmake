file(REMOVE_RECURSE
  "CMakeFiles/integration_study_test.dir/integration_study_test.cpp.o"
  "CMakeFiles/integration_study_test.dir/integration_study_test.cpp.o.d"
  "integration_study_test"
  "integration_study_test.pdb"
  "integration_study_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
