file(REMOVE_RECURSE
  "CMakeFiles/net_pcap_test.dir/net_pcap_test.cpp.o"
  "CMakeFiles/net_pcap_test.dir/net_pcap_test.cpp.o.d"
  "net_pcap_test"
  "net_pcap_test.pdb"
  "net_pcap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_pcap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
