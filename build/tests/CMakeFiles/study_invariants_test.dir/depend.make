# Empty dependencies file for study_invariants_test.
# This may be replaced when dependencies are built.
