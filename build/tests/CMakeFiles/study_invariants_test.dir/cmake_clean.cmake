file(REMOVE_RECURSE
  "CMakeFiles/study_invariants_test.dir/study_invariants_test.cpp.o"
  "CMakeFiles/study_invariants_test.dir/study_invariants_test.cpp.o.d"
  "study_invariants_test"
  "study_invariants_test.pdb"
  "study_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
