file(REMOVE_RECURSE
  "CMakeFiles/intel_synth_test.dir/intel_synth_test.cpp.o"
  "CMakeFiles/intel_synth_test.dir/intel_synth_test.cpp.o.d"
  "intel_synth_test"
  "intel_synth_test.pdb"
  "intel_synth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intel_synth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
