# Empty dependencies file for intel_synth_test.
# This may be replaced when dependencies are built.
