file(REMOVE_RECURSE
  "CMakeFiles/pipeline_equivalence_test.dir/pipeline_equivalence_test.cpp.o"
  "CMakeFiles/pipeline_equivalence_test.dir/pipeline_equivalence_test.cpp.o.d"
  "pipeline_equivalence_test"
  "pipeline_equivalence_test.pdb"
  "pipeline_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
