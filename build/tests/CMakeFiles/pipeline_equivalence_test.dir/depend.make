# Empty dependencies file for pipeline_equivalence_test.
# This may be replaced when dependencies are built.
