file(REMOVE_RECURSE
  "CMakeFiles/report_text_test.dir/report_text_test.cpp.o"
  "CMakeFiles/report_text_test.dir/report_text_test.cpp.o.d"
  "report_text_test"
  "report_text_test.pdb"
  "report_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
