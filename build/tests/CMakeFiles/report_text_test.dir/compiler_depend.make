# Empty compiler generated dependencies file for report_text_test.
# This may be replaced when dependencies are built.
