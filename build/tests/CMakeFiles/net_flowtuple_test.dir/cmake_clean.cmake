file(REMOVE_RECURSE
  "CMakeFiles/net_flowtuple_test.dir/net_flowtuple_test.cpp.o"
  "CMakeFiles/net_flowtuple_test.dir/net_flowtuple_test.cpp.o.d"
  "net_flowtuple_test"
  "net_flowtuple_test.pdb"
  "net_flowtuple_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_flowtuple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
