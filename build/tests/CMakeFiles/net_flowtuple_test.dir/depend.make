# Empty dependencies file for net_flowtuple_test.
# This may be replaced when dependencies are built.
