# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_rng_test[1]_include.cmake")
include("/root/repo/build/tests/util_misc_test[1]_include.cmake")
include("/root/repo/build/tests/net_ipv4_test[1]_include.cmake")
include("/root/repo/build/tests/net_packet_test[1]_include.cmake")
include("/root/repo/build/tests/net_flowtuple_test[1]_include.cmake")
include("/root/repo/build/tests/net_pcap_test[1]_include.cmake")
include("/root/repo/build/tests/net_prefix_map_test[1]_include.cmake")
include("/root/repo/build/tests/telescope_test[1]_include.cmake")
include("/root/repo/build/tests/inventory_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/intel_test[1]_include.cmake")
include("/root/repo/build/tests/intel_synth_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_classifier_test[1]_include.cmake")
include("/root/repo/build/tests/core_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/core_malicious_test[1]_include.cmake")
include("/root/repo/build/tests/core_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_study_test[1]_include.cmake")
include("/root/repo/build/tests/study_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/report_text_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_codec_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_equivalence_test[1]_include.cmake")
