file(REMOVE_RECURSE
  "CMakeFiles/botnet_watch.dir/botnet_watch.cpp.o"
  "CMakeFiles/botnet_watch.dir/botnet_watch.cpp.o.d"
  "botnet_watch"
  "botnet_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botnet_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
