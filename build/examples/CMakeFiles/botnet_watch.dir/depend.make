# Empty dependencies file for botnet_watch.
# This may be replaced when dependencies are built.
