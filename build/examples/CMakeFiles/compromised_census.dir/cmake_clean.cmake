file(REMOVE_RECURSE
  "CMakeFiles/compromised_census.dir/compromised_census.cpp.o"
  "CMakeFiles/compromised_census.dir/compromised_census.cpp.o.d"
  "compromised_census"
  "compromised_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compromised_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
