# Empty compiler generated dependencies file for compromised_census.
# This may be replaced when dependencies are built.
