# Empty dependencies file for dos_forensics.
# This may be replaced when dependencies are built.
