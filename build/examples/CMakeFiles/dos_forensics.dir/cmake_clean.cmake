file(REMOVE_RECURSE
  "CMakeFiles/dos_forensics.dir/dos_forensics.cpp.o"
  "CMakeFiles/dos_forensics.dir/dos_forensics.cpp.o.d"
  "dos_forensics"
  "dos_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dos_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
