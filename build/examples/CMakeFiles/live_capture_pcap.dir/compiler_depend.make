# Empty compiler generated dependencies file for live_capture_pcap.
# This may be replaced when dependencies are built.
