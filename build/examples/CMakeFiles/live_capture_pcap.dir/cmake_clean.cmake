file(REMOVE_RECURSE
  "CMakeFiles/live_capture_pcap.dir/live_capture_pcap.cpp.o"
  "CMakeFiles/live_capture_pcap.dir/live_capture_pcap.cpp.o.d"
  "live_capture_pcap"
  "live_capture_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_capture_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
