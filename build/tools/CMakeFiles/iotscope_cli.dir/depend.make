# Empty dependencies file for iotscope_cli.
# This may be replaced when dependencies are built.
