file(REMOVE_RECURSE
  "CMakeFiles/iotscope_cli.dir/iotscope_cli.cpp.o"
  "CMakeFiles/iotscope_cli.dir/iotscope_cli.cpp.o.d"
  "iotscope"
  "iotscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotscope_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
