# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_synth_analyze_roundtrip "bash" "-c" "set -e; d=\$(mktemp -d); trap 'rm -rf \$d' EXIT;              /root/repo/build/tools/iotscope synth --out \$d --inventory-scale 0.01 --traffic-scale 0.002 --with-truth;              /root/repo/build/tools/iotscope info --data \$d;              /root/repo/build/tools/iotscope analyze --data \$d | grep -q 'compromised devices:';              /root/repo/build/tools/iotscope fingerprint --data \$d;              /root/repo/build/tools/iotscope campaigns --data \$d | grep -q Telnet")
set_tests_properties(cli_synth_analyze_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
