file(REMOVE_RECURSE
  "CMakeFiles/iotscope_inventory.dir/catalog.cpp.o"
  "CMakeFiles/iotscope_inventory.dir/catalog.cpp.o.d"
  "CMakeFiles/iotscope_inventory.dir/database.cpp.o"
  "CMakeFiles/iotscope_inventory.dir/database.cpp.o.d"
  "CMakeFiles/iotscope_inventory.dir/device.cpp.o"
  "CMakeFiles/iotscope_inventory.dir/device.cpp.o.d"
  "CMakeFiles/iotscope_inventory.dir/generator.cpp.o"
  "CMakeFiles/iotscope_inventory.dir/generator.cpp.o.d"
  "libiotscope_inventory.a"
  "libiotscope_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotscope_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
