# Empty compiler generated dependencies file for iotscope_inventory.
# This may be replaced when dependencies are built.
