file(REMOVE_RECURSE
  "libiotscope_inventory.a"
)
