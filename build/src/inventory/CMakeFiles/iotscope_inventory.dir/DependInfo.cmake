
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inventory/catalog.cpp" "src/inventory/CMakeFiles/iotscope_inventory.dir/catalog.cpp.o" "gcc" "src/inventory/CMakeFiles/iotscope_inventory.dir/catalog.cpp.o.d"
  "/root/repo/src/inventory/database.cpp" "src/inventory/CMakeFiles/iotscope_inventory.dir/database.cpp.o" "gcc" "src/inventory/CMakeFiles/iotscope_inventory.dir/database.cpp.o.d"
  "/root/repo/src/inventory/device.cpp" "src/inventory/CMakeFiles/iotscope_inventory.dir/device.cpp.o" "gcc" "src/inventory/CMakeFiles/iotscope_inventory.dir/device.cpp.o.d"
  "/root/repo/src/inventory/generator.cpp" "src/inventory/CMakeFiles/iotscope_inventory.dir/generator.cpp.o" "gcc" "src/inventory/CMakeFiles/iotscope_inventory.dir/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/iotscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iotscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
