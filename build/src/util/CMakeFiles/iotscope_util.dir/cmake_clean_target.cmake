file(REMOVE_RECURSE
  "libiotscope_util.a"
)
