file(REMOVE_RECURSE
  "CMakeFiles/iotscope_util.dir/io.cpp.o"
  "CMakeFiles/iotscope_util.dir/io.cpp.o.d"
  "CMakeFiles/iotscope_util.dir/logging.cpp.o"
  "CMakeFiles/iotscope_util.dir/logging.cpp.o.d"
  "CMakeFiles/iotscope_util.dir/rng.cpp.o"
  "CMakeFiles/iotscope_util.dir/rng.cpp.o.d"
  "CMakeFiles/iotscope_util.dir/strings.cpp.o"
  "CMakeFiles/iotscope_util.dir/strings.cpp.o.d"
  "CMakeFiles/iotscope_util.dir/timebase.cpp.o"
  "CMakeFiles/iotscope_util.dir/timebase.cpp.o.d"
  "libiotscope_util.a"
  "libiotscope_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotscope_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
