# Empty compiler generated dependencies file for iotscope_util.
# This may be replaced when dependencies are built.
