file(REMOVE_RECURSE
  "libiotscope_intel.a"
)
