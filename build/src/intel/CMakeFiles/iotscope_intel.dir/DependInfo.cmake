
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/intel/malware.cpp" "src/intel/CMakeFiles/iotscope_intel.dir/malware.cpp.o" "gcc" "src/intel/CMakeFiles/iotscope_intel.dir/malware.cpp.o.d"
  "/root/repo/src/intel/synth.cpp" "src/intel/CMakeFiles/iotscope_intel.dir/synth.cpp.o" "gcc" "src/intel/CMakeFiles/iotscope_intel.dir/synth.cpp.o.d"
  "/root/repo/src/intel/threat.cpp" "src/intel/CMakeFiles/iotscope_intel.dir/threat.cpp.o" "gcc" "src/intel/CMakeFiles/iotscope_intel.dir/threat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/iotscope_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iotscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iotscope_util.dir/DependInfo.cmake"
  "/root/repo/build/src/inventory/CMakeFiles/iotscope_inventory.dir/DependInfo.cmake"
  "/root/repo/build/src/telescope/CMakeFiles/iotscope_telescope.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
