file(REMOVE_RECURSE
  "CMakeFiles/iotscope_intel.dir/malware.cpp.o"
  "CMakeFiles/iotscope_intel.dir/malware.cpp.o.d"
  "CMakeFiles/iotscope_intel.dir/synth.cpp.o"
  "CMakeFiles/iotscope_intel.dir/synth.cpp.o.d"
  "CMakeFiles/iotscope_intel.dir/threat.cpp.o"
  "CMakeFiles/iotscope_intel.dir/threat.cpp.o.d"
  "libiotscope_intel.a"
  "libiotscope_intel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotscope_intel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
