# Empty compiler generated dependencies file for iotscope_intel.
# This may be replaced when dependencies are built.
