# Empty compiler generated dependencies file for iotscope_telescope.
# This may be replaced when dependencies are built.
