file(REMOVE_RECURSE
  "CMakeFiles/iotscope_telescope.dir/capture.cpp.o"
  "CMakeFiles/iotscope_telescope.dir/capture.cpp.o.d"
  "CMakeFiles/iotscope_telescope.dir/store.cpp.o"
  "CMakeFiles/iotscope_telescope.dir/store.cpp.o.d"
  "libiotscope_telescope.a"
  "libiotscope_telescope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotscope_telescope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
