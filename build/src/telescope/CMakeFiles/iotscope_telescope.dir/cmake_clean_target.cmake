file(REMOVE_RECURSE
  "libiotscope_telescope.a"
)
