
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ecdf.cpp" "src/analysis/CMakeFiles/iotscope_analysis.dir/ecdf.cpp.o" "gcc" "src/analysis/CMakeFiles/iotscope_analysis.dir/ecdf.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/analysis/CMakeFiles/iotscope_analysis.dir/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/iotscope_analysis.dir/stats.cpp.o.d"
  "/root/repo/src/analysis/table.cpp" "src/analysis/CMakeFiles/iotscope_analysis.dir/table.cpp.o" "gcc" "src/analysis/CMakeFiles/iotscope_analysis.dir/table.cpp.o.d"
  "/root/repo/src/analysis/timeseries.cpp" "src/analysis/CMakeFiles/iotscope_analysis.dir/timeseries.cpp.o" "gcc" "src/analysis/CMakeFiles/iotscope_analysis.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/iotscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
