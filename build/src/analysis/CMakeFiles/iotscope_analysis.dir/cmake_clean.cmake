file(REMOVE_RECURSE
  "CMakeFiles/iotscope_analysis.dir/ecdf.cpp.o"
  "CMakeFiles/iotscope_analysis.dir/ecdf.cpp.o.d"
  "CMakeFiles/iotscope_analysis.dir/stats.cpp.o"
  "CMakeFiles/iotscope_analysis.dir/stats.cpp.o.d"
  "CMakeFiles/iotscope_analysis.dir/table.cpp.o"
  "CMakeFiles/iotscope_analysis.dir/table.cpp.o.d"
  "CMakeFiles/iotscope_analysis.dir/timeseries.cpp.o"
  "CMakeFiles/iotscope_analysis.dir/timeseries.cpp.o.d"
  "libiotscope_analysis.a"
  "libiotscope_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotscope_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
