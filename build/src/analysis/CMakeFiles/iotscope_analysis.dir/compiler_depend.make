# Empty compiler generated dependencies file for iotscope_analysis.
# This may be replaced when dependencies are built.
