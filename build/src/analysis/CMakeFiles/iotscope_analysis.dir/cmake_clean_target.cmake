file(REMOVE_RECURSE
  "libiotscope_analysis.a"
)
