file(REMOVE_RECURSE
  "libiotscope_workload.a"
)
