# Empty dependencies file for iotscope_workload.
# This may be replaced when dependencies are built.
