
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/scenario.cpp" "src/workload/CMakeFiles/iotscope_workload.dir/scenario.cpp.o" "gcc" "src/workload/CMakeFiles/iotscope_workload.dir/scenario.cpp.o.d"
  "/root/repo/src/workload/spec.cpp" "src/workload/CMakeFiles/iotscope_workload.dir/spec.cpp.o" "gcc" "src/workload/CMakeFiles/iotscope_workload.dir/spec.cpp.o.d"
  "/root/repo/src/workload/synth.cpp" "src/workload/CMakeFiles/iotscope_workload.dir/synth.cpp.o" "gcc" "src/workload/CMakeFiles/iotscope_workload.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/inventory/CMakeFiles/iotscope_inventory.dir/DependInfo.cmake"
  "/root/repo/build/src/telescope/CMakeFiles/iotscope_telescope.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iotscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iotscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
