file(REMOVE_RECURSE
  "CMakeFiles/iotscope_workload.dir/scenario.cpp.o"
  "CMakeFiles/iotscope_workload.dir/scenario.cpp.o.d"
  "CMakeFiles/iotscope_workload.dir/spec.cpp.o"
  "CMakeFiles/iotscope_workload.dir/spec.cpp.o.d"
  "CMakeFiles/iotscope_workload.dir/synth.cpp.o"
  "CMakeFiles/iotscope_workload.dir/synth.cpp.o.d"
  "libiotscope_workload.a"
  "libiotscope_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotscope_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
