file(REMOVE_RECURSE
  "libiotscope_net.a"
)
