# Empty compiler generated dependencies file for iotscope_net.
# This may be replaced when dependencies are built.
