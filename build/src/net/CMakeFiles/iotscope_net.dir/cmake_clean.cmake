file(REMOVE_RECURSE
  "CMakeFiles/iotscope_net.dir/checksum.cpp.o"
  "CMakeFiles/iotscope_net.dir/checksum.cpp.o.d"
  "CMakeFiles/iotscope_net.dir/flowtuple.cpp.o"
  "CMakeFiles/iotscope_net.dir/flowtuple.cpp.o.d"
  "CMakeFiles/iotscope_net.dir/ipv4.cpp.o"
  "CMakeFiles/iotscope_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/iotscope_net.dir/packet.cpp.o"
  "CMakeFiles/iotscope_net.dir/packet.cpp.o.d"
  "CMakeFiles/iotscope_net.dir/pcap.cpp.o"
  "CMakeFiles/iotscope_net.dir/pcap.cpp.o.d"
  "CMakeFiles/iotscope_net.dir/protocol.cpp.o"
  "CMakeFiles/iotscope_net.dir/protocol.cpp.o.d"
  "libiotscope_net.a"
  "libiotscope_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotscope_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
