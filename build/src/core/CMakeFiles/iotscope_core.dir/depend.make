# Empty dependencies file for iotscope_core.
# This may be replaced when dependencies are built.
