file(REMOVE_RECURSE
  "CMakeFiles/iotscope_core.dir/campaigns.cpp.o"
  "CMakeFiles/iotscope_core.dir/campaigns.cpp.o.d"
  "CMakeFiles/iotscope_core.dir/characterize.cpp.o"
  "CMakeFiles/iotscope_core.dir/characterize.cpp.o.d"
  "CMakeFiles/iotscope_core.dir/classifier.cpp.o"
  "CMakeFiles/iotscope_core.dir/classifier.cpp.o.d"
  "CMakeFiles/iotscope_core.dir/fingerprint.cpp.o"
  "CMakeFiles/iotscope_core.dir/fingerprint.cpp.o.d"
  "CMakeFiles/iotscope_core.dir/malicious.cpp.o"
  "CMakeFiles/iotscope_core.dir/malicious.cpp.o.d"
  "CMakeFiles/iotscope_core.dir/pipeline.cpp.o"
  "CMakeFiles/iotscope_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/iotscope_core.dir/report_text.cpp.o"
  "CMakeFiles/iotscope_core.dir/report_text.cpp.o.d"
  "CMakeFiles/iotscope_core.dir/study.cpp.o"
  "CMakeFiles/iotscope_core.dir/study.cpp.o.d"
  "libiotscope_core.a"
  "libiotscope_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotscope_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
