file(REMOVE_RECURSE
  "libiotscope_core.a"
)
