
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/campaigns.cpp" "src/core/CMakeFiles/iotscope_core.dir/campaigns.cpp.o" "gcc" "src/core/CMakeFiles/iotscope_core.dir/campaigns.cpp.o.d"
  "/root/repo/src/core/characterize.cpp" "src/core/CMakeFiles/iotscope_core.dir/characterize.cpp.o" "gcc" "src/core/CMakeFiles/iotscope_core.dir/characterize.cpp.o.d"
  "/root/repo/src/core/classifier.cpp" "src/core/CMakeFiles/iotscope_core.dir/classifier.cpp.o" "gcc" "src/core/CMakeFiles/iotscope_core.dir/classifier.cpp.o.d"
  "/root/repo/src/core/fingerprint.cpp" "src/core/CMakeFiles/iotscope_core.dir/fingerprint.cpp.o" "gcc" "src/core/CMakeFiles/iotscope_core.dir/fingerprint.cpp.o.d"
  "/root/repo/src/core/malicious.cpp" "src/core/CMakeFiles/iotscope_core.dir/malicious.cpp.o" "gcc" "src/core/CMakeFiles/iotscope_core.dir/malicious.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/iotscope_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/iotscope_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/report_text.cpp" "src/core/CMakeFiles/iotscope_core.dir/report_text.cpp.o" "gcc" "src/core/CMakeFiles/iotscope_core.dir/report_text.cpp.o.d"
  "/root/repo/src/core/study.cpp" "src/core/CMakeFiles/iotscope_core.dir/study.cpp.o" "gcc" "src/core/CMakeFiles/iotscope_core.dir/study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/iotscope_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/intel/CMakeFiles/iotscope_intel.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/iotscope_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/inventory/CMakeFiles/iotscope_inventory.dir/DependInfo.cmake"
  "/root/repo/build/src/telescope/CMakeFiles/iotscope_telescope.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iotscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iotscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
