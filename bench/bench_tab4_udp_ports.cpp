// Table IV: top 10 targeted UDP protocols/ports. Paper: 37547 (2.52%,
// 10,115 devices), NetBIOS/137 (2.06%, 144), 53413 (2.05%, 91), 32124
// (1.08%, 9,488), 28183 (0.94%, 9,710), mDNS/5353, 4605, DNS/53,
// Teredo/3544, OpenVPN/1194; the top 10 take ~10.7% of UDP packets and
// the rest spreads over 60,000+ ports.
#include <cstdio>

#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"
#include "workload/spec.hpp"

using namespace iotscope;

namespace {
std::string service_name(net::Port port) {
  for (const auto& spec : workload::udp_ports()) {
    if (spec.port == port) return spec.service;
  }
  return "Not Assigned";
}
}  // namespace

int main() {
  bench::print_header("Table IV", "Top 10 targeted UDP protocols/ports");
  const auto& report = bench::study().report;
  const double total = static_cast<double>(report.udp_total_packets);

  analysis::TextTable table(
      {"#", "Protocol/Port", "Packets", "% of UDP", "Devices"});
  double top10 = 0;
  for (std::size_t i = 0; i < report.udp_top_ports.size() && i < 10; ++i) {
    const auto& row = report.udp_top_ports[i];
    top10 += static_cast<double>(row.packets);
    table.add_row({std::to_string(i + 1),
                   service_name(row.port) + "/" + std::to_string(row.port),
                   util::with_commas(row.packets),
                   bench::pct(static_cast<double>(row.packets), total, 2),
                   util::with_commas(row.devices)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("top-10 share of UDP packets: %s (paper: ~10.7%%)\n",
              bench::pct(top10, total).c_str());
  std::printf("distinct UDP ports targeted: %zu (paper: all 65,535, with "
              "89.3%% of packets over 60,000+ ports)\n",
              report.udp_distinct_ports);
  std::printf("UDP senders: %zu devices, %s consumer (paper: 25,242, 60%%)\n",
              report.udp_device_count,
              bench::pct(static_cast<double>(report.udp_consumer_devices),
                         static_cast<double>(report.udp_device_count)).c_str());
  return 0;
}
