// Figure 8: (a) top 15 countries by number of DoS IoT victims and (b) by
// generated backscatter packets. Paper: China, Singapore and the U.S.
// host the most victims (China 103 CPS victims, U.S. 49; Singapore 64 and
// Indonesia 52 consumer victims); China generates 52% of backscatter,
// U.S. 5.9%, U.K. 4.1%; U.K./Brazil/Switzerland/Argentina are top-15 by
// packets while hosting few victims (10, 16, 4, 5).
#include <algorithm>
#include <cstdio>
#include <map>

#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"

using namespace iotscope;

int main() {
  bench::print_header("Figure 8", "DoS victims and backscatter packets by country");
  const auto& result = bench::study();
  const auto& report = result.report;
  const auto& db = result.scenario.inventory;

  struct CountryDos {
    std::size_t cps_victims = 0;
    std::size_t consumer_victims = 0;
    double packets = 0;
  };
  std::map<inventory::CountryId, CountryDos> by_country;
  for (const auto& ledger : report.devices) {
    const auto bs = ledger.backscatter();
    if (bs == 0) continue;
    const auto& device = db.devices()[ledger.device];
    auto& row = by_country[device.country];
    if (device.is_cps()) {
      ++row.cps_victims;
    } else {
      ++row.consumer_victims;
    }
    row.packets += static_cast<double>(bs);
  }

  std::vector<std::pair<inventory::CountryId, CountryDos>> rows(
      by_country.begin(), by_country.end());

  std::printf("-- (a) top 15 countries by DoS victims --\n");
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.cps_victims + a.second.consumer_victims >
           b.second.cps_victims + b.second.consumer_victims;
  });
  analysis::TextTable victims({"#", "Country", "Victims", "CPS", "Consumer"});
  for (std::size_t i = 0; i < rows.size() && i < 15; ++i) {
    const auto& [country, dos] = rows[i];
    victims.add_row({std::to_string(i + 1), db.country_name(country),
                     std::to_string(dos.cps_victims + dos.consumer_victims),
                     std::to_string(dos.cps_victims),
                     std::to_string(dos.consumer_victims)});
  }
  std::printf("%s\n", victims.render().c_str());

  std::printf("-- (b) top 15 countries by backscatter packets --\n");
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.packets > b.second.packets;
  });
  analysis::TextTable packets({"#", "Country", "Packets", "% of backscatter",
                               "Victims"});
  for (std::size_t i = 0; i < rows.size() && i < 15; ++i) {
    const auto& [country, dos] = rows[i];
    packets.add_row(
        {std::to_string(i + 1), db.country_name(country),
         util::with_commas(static_cast<std::uint64_t>(dos.packets)),
         bench::pct(dos.packets, static_cast<double>(report.backscatter_total)),
         std::to_string(dos.cps_victims + dos.consumer_victims)});
  }
  std::printf("%s\n", packets.render().c_str());
  std::printf("victim countries: %zu (paper: 80)\n", by_country.size());
  std::printf("paper: China 52%% of backscatter, U.S. 5.9%%, U.K. 4.1%%\n");
  return 0;
}
