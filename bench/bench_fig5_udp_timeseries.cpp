// Figure 5: overall UDP packets sent by compromised (a) CPS and (b)
// consumer IoT devices to destination IP addresses and ports, per hour.
// Paper: consumer devices target ~29K ports on ~48K destinations hourly
// with packets ~= destinations and r(ports, IPs) = 0.95 (p < 0.0001);
// CPS devices target fewer destinations (~14.7K) with recurring
// port-count spikes.
#include <cstdio>

#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"

using namespace iotscope;

namespace {
void print_series(const char* label, const core::TrafficSeries& series) {
  std::printf("-- %s: hourly packets / dst IPs / dst ports (every 8th hour) --\n",
              label);
  analysis::TextTable table({"Hour", "Packets", "Dst IPs", "Dst ports"});
  for (int h = 0; h < series.packets.size(); h += 8) {
    table.add_row({std::to_string(h + 1),
                   std::to_string(static_cast<long>(series.packets.at(h))),
                   std::to_string(static_cast<long>(series.dst_ips.at(h))),
                   std::to_string(static_cast<long>(series.dst_ports.at(h)))});
  }
  std::printf("%s", table.render().c_str());
  std::printf("hourly means: packets %.0f, dst IPs %.0f, dst ports %.0f\n\n",
              series.packets.mean(), series.dst_ips.mean(),
              series.dst_ports.mean());
}
}  // namespace

int main() {
  bench::print_header("Figure 5", "Hourly UDP packets / destinations / ports by realm");
  const auto& report = bench::study().report;

  print_series("(a) CPS", report.udp_series.cps);
  print_series("(b) Consumer", report.udp_series.consumer);

  const auto& consumer = report.udp_series.consumer;
  const double pkt_per_dst =
      consumer.dst_ips.mean() > 0
          ? consumer.packets.mean() / consumer.dst_ips.mean()
          : 0;
  const auto& cps = report.udp_series.cps;
  const double cps_pkt_per_dst =
      cps.dst_ips.mean() > 0 ? cps.packets.mean() / cps.dst_ips.mean() : 0;
  std::printf("consumer packets per destination: %.2f (paper: ~1, \"very few "
              "packets per destination IP\")\n",
              pkt_per_dst);
  std::printf("CPS packets per destination: %.2f (paper: significantly more "
              "per destination)\n",
              cps_pkt_per_dst);
  const auto& r = report.udp_consumer_port_ip_correlation;
  std::printf("consumer Pearson r(#dst ports, #dst IPs) = %.3f, p = %.2g "
              "(paper: r = 0.95, p < 0.0001)\n",
              r.r, r.p_value);
  return 0;
}
