// google-benchmark microbenchmarks of the pipeline hot paths: flowtuple
// encode/decode, inventory join (hash lookup) vs a sorted-merge baseline
// (the DESIGN.md join ablation), taxonomy classification, telescope
// aggregation, pcap round-trip, and the sharded analysis pipeline at
// 1/2/4/8 worker threads (the threading speedup table in EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "core/classifier.hpp"
#include "core/scenario_run.hpp"
#include "core/stream.hpp"
#include "net/block_codec.hpp"
#include "core/study.hpp"
#include "net/flow_batch.hpp"
#include "inventory/generator.hpp"
#include "net/flowtuple.hpp"
#include "net/pcap.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "telescope/capture.hpp"
#include "telescope/store.hpp"
#include "util/flat_hash.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"
#include "workload/engine.hpp"

using namespace iotscope;

namespace {

net::HourlyFlows make_flows(std::size_t n, util::Rng& rng) {
  net::HourlyFlows flows;
  flows.interval = 0;
  flows.start_time = util::AnalysisWindow::start();
  flows.records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    net::FlowTuple t;
    t.src = net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    t.dst = net::Ipv4Address::from_octets(
        10, static_cast<std::uint8_t>(rng.uniform(0, 255)),
        static_cast<std::uint8_t>(rng.uniform(0, 255)),
        static_cast<std::uint8_t>(rng.uniform(0, 255)));
    t.src_port = static_cast<net::Port>(rng.uniform(1024, 65535));
    t.dst_port = static_cast<net::Port>(rng.uniform(1, 65535));
    const auto r = rng.uniform01();
    t.protocol = r < 0.8   ? net::Protocol::Tcp
                 : r < 0.95 ? net::Protocol::Udp
                            : net::Protocol::Icmp;
    t.tcp_flags = t.protocol == net::Protocol::Tcp
                      ? (rng.chance(0.9) ? net::kSyn
                                         : static_cast<std::uint8_t>(
                                               net::kSyn | net::kAck))
                      : 0;
    t.ttl = static_cast<std::uint8_t>(rng.uniform(30, 200));
    t.ip_length = 44;
    t.packet_count = rng.uniform(1, 20);
    flows.records.push_back(t);
  }
  return flows;
}

const inventory::IoTDeviceDatabase& bench_inventory() {
  static const auto db = [] {
    inventory::SynthesisConfig config;
    config.device_count = 33100;
    return inventory::synthesize_inventory(config);
  }();
  return db;
}

// Block encoder into a reused buffer — the production write path.
void BM_FlowtupleEncode(benchmark::State& state) {
  util::Rng rng(1);
  const auto flows = make_flows(static_cast<std::size_t>(state.range(0)), rng);
  std::string blob;
  for (auto _ : state) {
    blob.clear();
    net::FlowTupleCodec::encode(blob, flows);
    benchmark::DoNotOptimize(blob);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlowtupleEncode)->Arg(1000)->Arg(100000);

// Before-variant: the same records through the ostream wrapper (buffer
// build + one os.write per file). The delta over BM_FlowtupleEncode is
// the stream overhead the block path avoids.
void BM_FlowtupleEncodeStream(benchmark::State& state) {
  util::Rng rng(1);
  const auto flows = make_flows(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    std::ostringstream os;
    net::FlowTupleCodec::write(os, flows);
    benchmark::DoNotOptimize(os);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlowtupleEncodeStream)->Arg(1000)->Arg(100000);

// Block decoder over an in-memory blob — the production read path
// (read_file slurps then calls exactly this).
void BM_FlowtupleDecode(benchmark::State& state) {
  util::Rng rng(1);
  const auto flows = make_flows(static_cast<std::size_t>(state.range(0)), rng);
  std::string blob;
  net::FlowTupleCodec::encode(blob, flows);
  for (auto _ : state) {
    auto decoded = net::FlowTupleCodec::decode(blob);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlowtupleDecode)->Arg(1000)->Arg(100000);

// Columnar decode: the same blob filled straight into FlowBatch column
// vectors — the production read path since the SoA refactor. Compare
// against BM_FlowtupleDecode (decode-to-AoS) for the layout delta.
void BM_FlowtupleDecodeColumns(benchmark::State& state) {
  util::Rng rng(1);
  const auto flows = make_flows(static_cast<std::size_t>(state.range(0)), rng);
  std::string blob;
  net::FlowTupleCodec::encode(blob, flows);
  for (auto _ : state) {
    auto decoded = net::FlowTupleCodec::decode_columns(blob);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlowtupleDecodeColumns)->Arg(1000)->Arg(100000);

// Before-variant: the original per-field istream decoder this PR
// replaced (kept as FlowTupleCodec::read_unbuffered). The speedup
// target in ISSUE/EXPERIMENTS is BM_FlowtupleDecode vs this.
void BM_FlowtupleDecodeUnbuffered(benchmark::State& state) {
  util::Rng rng(1);
  const auto flows = make_flows(static_cast<std::size_t>(state.range(0)), rng);
  std::string blob;
  net::FlowTupleCodec::encode(blob, flows);
  for (auto _ : state) {
    std::istringstream is(blob);
    auto decoded = net::FlowTupleCodec::read_unbuffered(is);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlowtupleDecodeUnbuffered)->Arg(1000)->Arg(100000);

void BM_InventoryHashJoin(benchmark::State& state) {
  const auto& db = bench_inventory();
  util::Rng rng(2);
  auto flows = make_flows(static_cast<std::size_t>(state.range(0)), rng);
  // Make ~30% of sources real inventory IPs so the join hits.
  for (std::size_t i = 0; i < flows.records.size(); i += 3) {
    flows.records[i].src =
        db.devices()[rng.uniform(0, db.size() - 1)].ip;
  }
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& record : flows.records) {
      if (db.find(record.src) != nullptr) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InventoryHashJoin)->Arg(100000);

// Before-variant: the node-based std::unordered_map index the flat
// open-addressing index replaced. Same key mix, same hit rate.
void BM_InventoryUnorderedJoin(benchmark::State& state) {
  const auto& db = bench_inventory();
  util::Rng rng(2);
  auto flows = make_flows(static_cast<std::size_t>(state.range(0)), rng);
  for (std::size_t i = 0; i < flows.records.size(); i += 3) {
    flows.records[i].src = db.devices()[rng.uniform(0, db.size() - 1)].ip;
  }
  std::unordered_map<std::uint32_t, std::uint32_t> by_ip;
  by_ip.reserve(db.size());
  for (std::uint32_t i = 0; i < db.size(); ++i) {
    by_ip.emplace(db.devices()[i].ip.value(), i);
  }
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& record : flows.records) {
      if (by_ip.find(record.src.value()) != by_ip.end()) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InventoryUnorderedJoin)->Arg(100000);

// Join ablation: sorted-merge join over (sorted flows x sorted device IPs).
void BM_InventorySortedMergeJoin(benchmark::State& state) {
  const auto& db = bench_inventory();
  util::Rng rng(2);
  auto flows = make_flows(static_cast<std::size_t>(state.range(0)), rng);
  for (std::size_t i = 0; i < flows.records.size(); i += 3) {
    flows.records[i].src = db.devices()[rng.uniform(0, db.size() - 1)].ip;
  }
  std::vector<std::uint32_t> device_ips;
  device_ips.reserve(db.size());
  for (const auto& device : db.devices()) {
    device_ips.push_back(device.ip.value());
  }
  std::sort(device_ips.begin(), device_ips.end());
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::uint32_t> srcs;
    srcs.reserve(flows.records.size());
    for (const auto& record : flows.records) srcs.push_back(record.src.value());
    state.ResumeTiming();
    std::sort(srcs.begin(), srcs.end());
    std::size_t hits = 0;
    auto it = device_ips.begin();
    for (const auto src : srcs) {
      it = std::lower_bound(it, device_ips.end(), src);
      if (it != device_ips.end() && *it == src) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InventorySortedMergeJoin)->Arg(100000);

// --- Per-hour accumulator ablation -------------------------------------
//
// Models ShardState's per-hour distinct sets: each "hour" inserts a mix
// of fresh and repeated u32 keys (distinct dst IPs) and u64 keys
// ((port<<32)|device dedup pairs), then clears. The flat variant is the
// epoch-cleared open-addressing set the pipeline now uses — steady state
// allocates nothing; the unordered variant is the std::unordered_set it
// replaced, which re-allocates nodes every hour.

constexpr std::size_t kAccumHourInserts = 20000;
constexpr std::size_t kAccumHours = 16;

std::vector<std::uint32_t> accum_keys() {
  util::Rng rng(6);
  std::vector<std::uint32_t> keys(kAccumHourInserts);
  for (auto& k : keys) {
    // ~50% duplicates within an hour, like repeated dst IPs.
    k = static_cast<std::uint32_t>(rng.uniform(0, kAccumHourInserts / 2));
  }
  return keys;
}

void BM_AccumulatorFlatSets(benchmark::State& state) {
  const auto keys = accum_keys();
  util::FlatSet<std::uint32_t> dsts;
  util::FlatSet<std::uint64_t> pairs;
  for (auto _ : state) {
    std::size_t fresh = 0;
    for (std::size_t hour = 0; hour < kAccumHours; ++hour) {
      for (const auto k : keys) {
        if (dsts.insert(k)) ++fresh;
        pairs.insert((std::uint64_t{k} << 32) | hour);
      }
      dsts.clear();
      pairs.clear();
    }
    benchmark::DoNotOptimize(fresh);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kAccumHours *
                                kAccumHourInserts));
}
BENCHMARK(BM_AccumulatorFlatSets);

void BM_AccumulatorUnorderedSets(benchmark::State& state) {
  const auto keys = accum_keys();
  std::unordered_set<std::uint32_t> dsts;
  std::unordered_set<std::uint64_t> pairs;
  for (auto _ : state) {
    std::size_t fresh = 0;
    for (std::size_t hour = 0; hour < kAccumHours; ++hour) {
      for (const auto k : keys) {
        if (dsts.insert(k).second) ++fresh;
        pairs.insert((std::uint64_t{k} << 32) | hour);
      }
      dsts.clear();
      pairs.clear();
    }
    benchmark::DoNotOptimize(fresh);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kAccumHours *
                                kAccumHourInserts));
}
BENCHMARK(BM_AccumulatorUnorderedSets);

void BM_Classify(benchmark::State& state) {
  util::Rng rng(3);
  const auto flows = make_flows(100000, rng);
  for (auto _ : state) {
    std::size_t scans = 0;
    for (const auto& record : flows.records) {
      if (core::classify(record) == core::FlowClass::TcpScan) ++scans;
    }
    benchmark::DoNotOptimize(scans);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_Classify);

// The shared columnar classification pass: one classify_tag per record
// over contiguous proto/flags/port columns into the reused tag vector —
// what AnalysisPipeline::observe(FlowBatch) runs once per hour. Compare
// against BM_Classify (AoS record structs, one classify per use).
void BM_ClassifyBatch(benchmark::State& state) {
  util::Rng rng(3);
  const auto batch = net::FlowBatch::from_rows(make_flows(100000, rng));
  std::vector<core::ClassTag> tags;
  for (auto _ : state) {
    core::classify_batch(batch, core::TaxonomyOptions{}, tags);
    std::size_t scans = 0;
    for (const auto tag : tags) {
      if (core::tag_class(tag) == core::FlowClass::TcpScan) ++scans;
    }
    benchmark::DoNotOptimize(scans);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_ClassifyBatch);

void BM_TelescopeAggregate(benchmark::State& state) {
  util::Rng rng(4);
  const std::size_t n = 100000;
  std::vector<net::PacketRecord> packets;
  packets.reserve(n);
  telescope::DarknetSpace space;
  for (std::size_t i = 0; i < n; ++i) {
    packets.push_back(net::make_tcp_syn(
        util::AnalysisWindow::start() + static_cast<long>(rng.uniform(0, 3599)),
        net::Ipv4Address(static_cast<std::uint32_t>(rng.next())),
        space.random_address(rng),
        static_cast<net::Port>(rng.uniform(1024, 65535)), 23));
  }
  for (auto _ : state) {
    std::size_t flows_out = 0;
    telescope::TelescopeCapture capture(
        space, [&flows_out](net::FlowBatch&& batch) {
          flows_out += batch.size();
        });
    for (const auto& packet : packets) capture.ingest(packet);
    capture.finish();
    benchmark::DoNotOptimize(flows_out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TelescopeAggregate);

void BM_PcapRoundTrip(benchmark::State& state) {
  util::Rng rng(5);
  telescope::DarknetSpace space;
  std::vector<net::PacketRecord> packets;
  for (std::size_t i = 0; i < 10000; ++i) {
    packets.push_back(net::make_udp(
        util::AnalysisWindow::start(),
        net::Ipv4Address(static_cast<std::uint32_t>(rng.next())),
        space.random_address(rng), 40000,
        static_cast<net::Port>(rng.uniform(1, 65535))));
  }
  for (auto _ : state) {
    std::ostringstream os;
    net::PcapWriter writer(os);
    for (const auto& packet : packets) writer.write(packet);
    std::istringstream is(os.str());
    net::PcapReader reader(is);
    net::PacketRecord p;
    std::size_t count = 0;
    while (reader.next(p)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_PcapRoundTrip);

// --- Sharded analysis pipeline: sequential vs N worker threads ---------
//
// The workload is the bench-default study scenario (10% inventory, 1/50
// traffic), synthesized once and replayed into a fresh pipeline per
// iteration. Arg(0) is the thread count; Arg(1) exists so ratios can be
// read straight off the items/s column.

const core::StudyConfig& bench_study_config() {
  static const auto config = core::StudyConfig::bench_default();
  return config;
}

struct BenchWorkload {
  workload::Scenario scenario;
  std::vector<net::FlowBatch> batches;      ///< the production SoA path
  std::vector<net::HourlyFlows> hours;      ///< same records as AoS rows
  std::uint64_t total_packets = 0;
  std::uint64_t total_records = 0;          ///< flowtuple records (rows)
};

const BenchWorkload& bench_workload() {
  static const BenchWorkload instance = [] {
    BenchWorkload w;
    const auto& config = bench_study_config();
    w.scenario = workload::build_scenario(config.scenario);
    telescope::TelescopeCapture capture(
        telescope::DarknetSpace(config.scenario.darknet),
        [&w](net::FlowBatch&& batch) { w.batches.push_back(std::move(batch)); });
    workload::synthesize_into(w.scenario, config.scenario, capture);
    for (auto& b : w.batches) {
      // Production form: the batch is tagged once where it is born (the
      // shared classification pass); observe() consumes the column.
      core::classify_batch(b, config.pipeline.taxonomy);
      w.total_packets += b.total_packets();
      w.total_records += b.size();
      w.hours.push_back(b.to_rows());
    }
    return w;
  }();
  return instance;
}

void BM_PipelineAnalysis(benchmark::State& state) {
  const auto& w = bench_workload();
  core::PipelineOptions options = bench_study_config().pipeline;
  options.threads = static_cast<unsigned>(state.range(0));
  // Zero the obs registry so the stage breakdown below covers exactly
  // this run's iterations at this thread count.
  obs::Registry::instance().reset();
  for (auto _ : state) {
    core::AnalysisPipeline pipeline(w.scenario.inventory, options);
    for (const auto& b : w.batches) pipeline.observe(b);
    auto report = pipeline.finalize();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * w.total_packets));
  state.counters["threads"] = static_cast<double>(options.threads);

  // Per-stage wall time per iteration (ms), straight from the metrics
  // registry — the per-thread-count stage breakdown for EXPERIMENTS.md.
  const auto snapshot = obs::Registry::instance().snapshot();
  const auto stage_ms = [&](const char* name) {
    const auto* s = snapshot.stage(name);
    return s == nullptr ? 0.0
                        : static_cast<double>(s->total_ns) / 1e6 /
                              static_cast<double>(state.iterations());
  };
  state.counters["partition_ms"] = stage_ms("pipeline.partition");
  state.counters["shard_observe_ms"] = stage_ms("pipeline.observe.shard");
  state.counters["fanin_ms"] = stage_ms("pipeline.fanin");
  state.counters["finalize_ms"] = stage_ms("pipeline.finalize");
  state.counters["observe_ms"] = stage_ms("pipeline.observe");
  state.counters["classify_ms"] = stage_ms("pipeline.classify");
}
BENCHMARK(BM_PipelineAnalysis)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Metrics-off ablation: identical workload with obs collection disabled.
// Compare against BM_PipelineAnalysis at the same thread count to read
// the observability overhead (budget: ≤ 2 %; instrumentation is at
// hour/shard granularity so the expected delta is noise).
void BM_PipelineAnalysisMetricsOff(benchmark::State& state) {
  const auto& w = bench_workload();
  core::PipelineOptions options = bench_study_config().pipeline;
  options.threads = static_cast<unsigned>(state.range(0));
  obs::set_enabled(false);
  for (auto _ : state) {
    core::AnalysisPipeline pipeline(w.scenario.inventory, options);
    for (const auto& b : w.batches) pipeline.observe(b);
    auto report = pipeline.finalize();
    benchmark::DoNotOptimize(report);
  }
  obs::set_enabled(true);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * w.total_packets));
  state.counters["threads"] = static_cast<double>(options.threads);
}
BENCHMARK(BM_PipelineAnalysisMetricsOff)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// --- AoS vs SoA end-to-end analysis (the PR-4 tentpole ablation) -------
//
// Identical records, identical Report, two record paths: observe_aos
// walks the retained AoS FlowTuple vectors and classifies at every point
// of use (the pre-batch implementation); observe(FlowBatch) walks
// contiguous columns and consumes the class_tag column the shared
// classification pass stamped when the batch was born. Single thread,
// so the delta is pure record-path cost (no partition/fan-out).

void BM_PipelineAnalysisAoS(benchmark::State& state) {
  const auto& w = bench_workload();
  core::PipelineOptions options = bench_study_config().pipeline;
  options.threads = 1;
  for (auto _ : state) {
    core::AnalysisPipeline pipeline(w.scenario.inventory, options);
    for (const auto& h : w.hours) pipeline.observe_aos(h);
    auto report = pipeline.finalize();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * w.total_packets));
}
BENCHMARK(BM_PipelineAnalysisAoS)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_PipelineAnalysisBatch(benchmark::State& state) {
  const auto& w = bench_workload();
  core::PipelineOptions options = bench_study_config().pipeline;
  options.threads = 1;
  for (auto _ : state) {
    core::AnalysisPipeline pipeline(w.scenario.inventory, options);
    for (const auto& b : w.batches) pipeline.observe(b);
    auto report = pipeline.finalize();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * w.total_packets));
}
BENCHMARK(BM_PipelineAnalysisBatch)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// --- Heavy-hitter skew: static shard split vs morsel stealing ----------
//
// One source emits ~80% of every hour (heavy_hitter_share = 0.8), so the
// hash partition pins ~80% of each hour's records to one shard. The
// static schedule's critical path is that hot shard; morsel stealing
// chops it into kMorselRecords-sized units that idle workers pull.
//
// Besides wall time (which needs a multi-core box to separate — on a
// single-core CI runner the threads time-slice and all variants collapse
// to sequential), each run reports machine-independent load-balance
// numbers derived from the scheduler's own instrumentation:
//   skew_pct       pipeline.shard.skew high-water: hottest shard as a
//                  percent of the per-shard mean (100 = even,
//                  threads*100 = everything on one shard)
//   model_speedup  per-hour records / critical-path records.
//                  Static: the hot shard is the critical path, so this
//                  is threads*100/skew_pct. Stealing: the critical path
//                  is an even share plus one trailing morsel,
//                  n / (n/threads + kMorselRecords).
//   stolen_share   fraction of morsels that ran on a lane other than
//                  the one the partition assigned them to (stealing
//                  variant only).

const BenchWorkload& skewed_workload() {
  static const BenchWorkload instance = [] {
    BenchWorkload w;
    auto config = bench_study_config().scenario;
    // The skew source adds share/(1-share) = 4x extra records per hour;
    // scale the base traffic down so the total stays bench-sized.
    config.traffic_scale *= 0.25;
    config.heavy_hitter_share = 0.8;
    w.scenario = workload::build_scenario(config);
    telescope::TelescopeCapture capture(
        telescope::DarknetSpace(config.darknet),
        [&w](net::FlowBatch&& batch) { w.batches.push_back(std::move(batch)); });
    workload::synthesize_into(w.scenario, config, capture);
    for (auto& b : w.batches) {
      core::classify_batch(b, bench_study_config().pipeline.taxonomy);
      w.total_packets += b.total_packets();
      w.total_records += b.size();
    }
    return w;
  }();
  return instance;
}

void run_skewed_pipeline(benchmark::State& state,
                         core::ShardScheduler scheduler) {
  const auto& w = skewed_workload();
  core::PipelineOptions options = bench_study_config().pipeline;
  const unsigned threads = static_cast<unsigned>(state.range(0));
  options.threads = threads;
  options.scheduler = scheduler;
  obs::Registry::instance().reset();
  for (auto _ : state) {
    core::AnalysisPipeline pipeline(w.scenario.inventory, options);
    for (const auto& b : w.batches) pipeline.observe(b);
    auto report = pipeline.finalize();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * w.total_packets));
  state.counters["threads"] = static_cast<double>(threads);

  const auto snapshot = obs::Registry::instance().snapshot();
  const auto* skew = snapshot.gauge("pipeline.shard.skew");
  // threads == 1 takes the single-shard fast path: no partition, no
  // skew gauge, and by definition no speedup to model.
  const double skew_pct =
      (threads > 1 && skew != nullptr) ? static_cast<double>(skew->max)
                                       : 100.0;
  state.counters["skew_pct"] = skew_pct;
  const double per_hour = static_cast<double>(w.total_records) /
                          static_cast<double>(w.batches.size());
  double model = 1.0;
  if (threads > 1) {
    model = scheduler == core::ShardScheduler::Static
                ? static_cast<double>(threads) * 100.0 / skew_pct
                : per_hour / (per_hour / static_cast<double>(threads) +
                              static_cast<double>(core::kMorselRecords));
  }
  state.counters["model_speedup"] = model;
  if (scheduler == core::ShardScheduler::Stealing) {
    const auto* claimed = snapshot.counter("pipeline.morsel.claimed");
    const auto* stolen = snapshot.counter("pipeline.morsel.stolen");
    const double c = claimed != nullptr ? static_cast<double>(claimed->value) : 0;
    const double s = stolen != nullptr ? static_cast<double>(stolen->value) : 0;
    state.counters["stolen_share"] = c + s > 0 ? s / (c + s) : 0.0;
  }
}

void BM_PipelineSkewedStatic(benchmark::State& state) {
  run_skewed_pipeline(state, core::ShardScheduler::Static);
}
BENCHMARK(BM_PipelineSkewedStatic)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_PipelineSkewedStealing(benchmark::State& state) {
  run_skewed_pipeline(state, core::ShardScheduler::Stealing);
}
BENCHMARK(BM_PipelineSkewedStealing)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// --- Task-graph scheduler: hour overlap vs the hour-barrier baseline ---
//
// The skewed workload is encoded once into an on-disk compressed store,
// so each hour carries a real decode cost — the stage the task graph
// overlaps with the previous hour's observe/fan-in. Both variants drive
// the same observe_async(hour_loaders) entry point; under Stealing it
// degenerates to a synchronous decode + observe per hour (the
// hour-level barrier), under Graph each hour becomes a task subgraph
// and up to max_inflight_hours hours run concurrently. Reports are
// byte-identical across the two (pinned by scheduler_graph_test).
//
// Wall time only separates the variants on a multi-core box (on a
// single-core runner the lanes time-slice and both collapse to the
// sequential cost), so each run also reports machine-independent
// overlap evidence straight from the scheduler's instrumentation:
//   inflight_max   pipeline.task.inflight_hours high-water — >= 2 means
//                  hour N+1's decode/classify ran before hour N folded
//                  (graph only; the barrier variants never exceed 1)
//   spawned        task-graph tasks created per run
//   stolen_share   fraction of tasks that ran off their preferred lane
//   queue_max      task.queue_depth high-water (ready-task backlog)
//   overlap_ms     pipeline.overlap stage per iteration: hour lifetime
//                  from subgraph submission to fold — under the barrier
//                  this equals the hour's serial cost; under the graph
//                  it grows with admission while *total* time shrinks,
//                  the signature of hours spent concurrently in flight.
void run_taskgraph_pipeline(benchmark::State& state,
                            core::ShardScheduler scheduler) {
  const auto& w = skewed_workload();
  static const util::TempDir graph_dir;
  static const telescope::FlowTupleStore store = [] {
    telescope::FlowTupleStore s(graph_dir.path());
    s.set_write_format(telescope::StoreFormat::Compressed);
    for (const auto& b : skewed_workload().batches) s.put(b);
    return s;
  }();

  core::PipelineOptions options = bench_study_config().pipeline;
  const unsigned threads = static_cast<unsigned>(state.range(0));
  options.threads = threads;
  options.scheduler = scheduler;
  const auto intervals = store.intervals();
  obs::Registry::instance().reset();
  for (auto _ : state) {
    core::AnalysisPipeline pipeline(w.scenario.inventory, options);
    for (const int interval : intervals) {
      pipeline.observe_async(store.hour_loaders(interval, threads));
    }
    pipeline.drain();
    auto report = pipeline.finalize();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * w.total_packets));
  state.counters["threads"] = static_cast<double>(threads);

  const auto snapshot = obs::Registry::instance().snapshot();
  const auto* inflight = snapshot.gauge("pipeline.task.inflight_hours");
  const auto* depth = snapshot.gauge("task.queue_depth");
  const auto* spawned = snapshot.counter("pipeline.task.spawned");
  const auto* stolen = snapshot.counter("pipeline.task.stolen");
  state.counters["inflight_max"] =
      inflight != nullptr ? static_cast<double>(inflight->max) : 0.0;
  state.counters["queue_max"] =
      depth != nullptr ? static_cast<double>(depth->max) : 0.0;
  const double spawn_count =
      spawned != nullptr ? static_cast<double>(spawned->value) /
                               static_cast<double>(state.iterations())
                         : 0.0;
  state.counters["spawned"] = spawn_count;
  state.counters["stolen_share"] =
      spawn_count > 0 && stolen != nullptr
          ? static_cast<double>(stolen->value) /
                static_cast<double>(state.iterations()) / spawn_count
          : 0.0;
  const auto* overlap = snapshot.stage("pipeline.overlap");
  state.counters["overlap_ms"] =
      overlap != nullptr ? static_cast<double>(overlap->total_ns) / 1e6 /
                               static_cast<double>(state.iterations())
                         : 0.0;
}

void BM_TaskGraphPipeline(benchmark::State& state) {
  run_taskgraph_pipeline(state, core::ShardScheduler::Graph);
}
BENCHMARK(BM_TaskGraphPipeline)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_TaskGraphPipelineBarrier(benchmark::State& state) {
  run_taskgraph_pipeline(state, core::ShardScheduler::Stealing);
}
BENCHMARK(BM_TaskGraphPipelineBarrier)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// --- Compressed block storage: encode / decode / predicate pushdown ----
//
// The corpus is the heavy-hitter workload (skewed_workload): darknet
// traffic is scanner-dominated, and the column codec's src-keyed modes
// exist precisely because a scanner re-uses one TTL / one target port /
// one packet shape across millions of records. Counters:
//   ratio      raw bytes (25 B/record) / compressed bytes
//   skip_pct   blocks skipped undecoded by the hour-window predicate
// Compare BM_CompressedDecode items/s against BM_FlowtupleDecodeColumns
// (the raw ".ift" columnar decode) for the decode-throughput delta.

struct CompressedCorpus {
  std::vector<std::string> blobs;  ///< one encoded ".iftc" image per hour
  std::uint64_t records = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t compressed_bytes = 0;
};

const CompressedCorpus& compressed_corpus() {
  static const CompressedCorpus instance = [] {
    CompressedCorpus c;
    for (const auto& b : skewed_workload().batches) {
      std::string blob;
      net::CompressedFlowCodec::encode(blob, b);
      c.records += b.size();
      c.raw_bytes += b.size() * net::FlowTupleCodec::kRecordBytes;
      c.compressed_bytes += blob.size();
      c.blobs.push_back(std::move(blob));
    }
    return c;
  }();
  return instance;
}

void BM_CompressedEncode(benchmark::State& state) {
  const auto& w = skewed_workload();
  const auto& c = compressed_corpus();
  std::string blob;
  for (auto _ : state) {
    std::size_t bytes = 0;
    for (const auto& b : w.batches) {
      blob.clear();
      net::CompressedFlowCodec::encode(blob, b);
      bytes += blob.size();
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * c.records));
  state.counters["ratio"] = static_cast<double>(c.raw_bytes) /
                            static_cast<double>(c.compressed_bytes);
}
BENCHMARK(BM_CompressedEncode)->Unit(benchmark::kMillisecond);

void BM_CompressedDecode(benchmark::State& state) {
  const auto& c = compressed_corpus();
  for (auto _ : state) {
    std::size_t rows = 0;
    for (const auto& blob : c.blobs) {
      auto batch = net::CompressedFlowCodec::decode(blob);
      rows += batch.size();
      benchmark::DoNotOptimize(batch);
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * c.records));
  state.counters["ratio"] = static_cast<double>(c.raw_bytes) /
                            static_cast<double>(c.compressed_bytes);
}
BENCHMARK(BM_CompressedDecode)->Unit(benchmark::kMillisecond);

// Hour-windowed replay over an on-disk compressed store — the TB-scale
// query pattern pushdown exists for. The predicate selects a 14-hour
// window out of 143; every block outside it is skipped off the header
// summary without touching its payload. items/s counts every record the
// store holds (the effective replay rate a windowed study observes).
void BM_CompressedScanPushdown(benchmark::State& state) {
  const auto& w = skewed_workload();
  const auto& c = compressed_corpus();
  static const util::TempDir scan_dir;
  static const telescope::FlowTupleStore store = [] {
    telescope::FlowTupleStore s(scan_dir.path());
    s.set_write_format(telescope::StoreFormat::Compressed);
    for (const auto& b : skewed_workload().batches) s.put(b);
    return s;
  }();

  const int mid = static_cast<int>(w.batches.size() / 2);
  net::BlockPredicate predicate;
  predicate.hour_min = mid;
  predicate.hour_max = mid + 13;
  telescope::ScanOptions options;
  options.predicate = predicate;
  options.readers = static_cast<std::size_t>(state.range(0));

  obs::Registry::instance().reset();
  for (auto _ : state) {
    std::uint64_t rows = 0;
    store.scan(
        [&rows](const net::FlowBatch& batch) { rows += batch.size(); },
        options);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * c.records));
  state.counters["readers"] = static_cast<double>(state.range(0));

  const auto snapshot = obs::Registry::instance().snapshot();
  const auto counter = [&](const char* name) {
    const auto* sample = snapshot.counter(name);
    return sample == nullptr ? 0.0 : static_cast<double>(sample->value);
  };
  const double skipped = counter("store.blocks.skipped");
  const double decoded = counter("store.blocks.decoded");
  state.counters["skip_pct"] =
      skipped + decoded > 0 ? 100.0 * skipped / (skipped + decoded) : 0.0;
}
BENCHMARK(BM_CompressedScanPushdown)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Streaming ingest: the daemon's follow loop over an on-disk store --
//
// The bench-default workload is encoded once into an on-disk flowtuple
// store; each iteration streams it end to end through a StreamingStudy
// (watermark admission, periodic snapshot publication, cold-profile
// eviction). Arg(0) = snapshot cadence in admitted hours (0 = final
// report only); Arg(1) = eviction idle threshold in hours (0 = never
// evict). The unknown-profile promotion floor is lowered to 1 so every
// background-noise source mints a profile — the population the eviction
// bound exists for. The memory story is machine-independent:
//   hot_profiles_end   unknown-source profiles still resident in the
//                      hot map after 143 hours — the steady-state
//                      working set. Bounded with eviction on; equal to
//                      the whole source population with it off.
//   profiles_evicted   cumulative hot -> frozen moves
//   snapshot_ms        stream.snapshot stage time per full-run iteration
//                      (the price of a cadence, paid off the hot path)
void BM_StreamingIngest(benchmark::State& state) {
  const auto& w = bench_workload();
  static const util::TempDir stream_dir;
  static const telescope::FlowTupleStore store = [] {
    telescope::FlowTupleStore s(stream_dir.path());
    for (const auto& b : bench_workload().batches) s.put(b);
    return s;
  }();

  core::PipelineOptions pipeline_options = bench_study_config().pipeline;
  pipeline_options.unknown_profile_hourly_floor = 1;
  core::StreamOptions stream_options;
  stream_options.snapshot_every = static_cast<int>(state.range(0));
  stream_options.evict_after_hours = static_cast<int>(state.range(1));

  obs::Registry::instance().reset();
  double evicted = 0, snapshots = 0, hot_end = 0;
  for (auto _ : state) {
    core::StreamingStudy stream(w.scenario.inventory, store,
                                pipeline_options, stream_options);
    stream.poll_once();
    auto report = stream.finalize();
    benchmark::DoNotOptimize(report);
    evicted = static_cast<double>(stream.stats().profiles_evicted);
    snapshots = static_cast<double>(stream.stats().snapshots_published);
    hot_end = static_cast<double>(stream.pipeline().hot_unknown_profiles());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * w.total_packets));
  state.counters["snapshot_every"] = static_cast<double>(state.range(0));
  state.counters["evict_after"] = static_cast<double>(state.range(1));
  state.counters["profiles_evicted"] = evicted;
  state.counters["hot_profiles_end"] = hot_end;
  state.counters["snapshots"] = snapshots;

  const auto snapshot = obs::Registry::instance().snapshot();
  const auto stage_ms = [&](const char* name) {
    const auto* s = snapshot.stage(name);
    return s == nullptr ? 0.0
                        : static_cast<double>(s->total_ns) / 1e6 /
                              static_cast<double>(state.iterations());
  };
  state.counters["snapshot_ms"] = stage_ms("stream.snapshot");
  state.counters["admit_ms"] = stage_ms("stream.admit");
  state.counters["decode_ms"] = stage_ms("store.decode");
}
BENCHMARK(BM_StreamingIngest)
    ->Args({0, 6})
    ->Args({12, 6})
    ->Args({24, 6})
    ->Args({24, 0})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// --- Snapshot query server: Zipf-keyed load over live ingest -----------
//
// A ReportServer answers a single keep-alive HTTP client whose targets
// are drawn Zipf(s=1) over a few hundred distinct endpoints — summary /
// top-ports / healthz dominate, then a per-country, per-ISP and
// per-device tail. That skew is the operator-dashboard access pattern
// the sharded LRU exists for: the hot head should hit the cache, the
// tail should exercise the render path. Arg(0) = server worker threads;
// Arg(1) = 1 runs a concurrent streaming-ingest thread that keeps
// republishing snapshots (each epoch bump lazily invalidates the whole
// cache) while queries run, 0 serves one frozen snapshot.
//
// items/s is QPS (one item per request). Counters:
//   p50_us / p99_us   client-observed request latency percentiles
//   cache_hit_pct     LRU hit rate across the run
//   epochs            snapshots republished while measuring (ingest=1)

/// Percent-encodes everything outside the URL-unreserved set, so ISP
/// and country names with spaces survive the request line.
std::string percent_encode(std::string_view raw) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(raw.size());
  for (const unsigned char c : raw) {
    const bool unreserved = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '-' || c == '.' ||
                            c == '_' || c == '~' || c == '/';
    if (unreserved) {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xF]);
    }
  }
  return out;
}

/// The query universe, ordered hot-to-cold for the Zipf head to land on
/// the dashboard staples.
const std::vector<std::string>& serve_targets() {
  static const std::vector<std::string> instance = [] {
    const auto& db = bench_workload().scenario.inventory;
    std::vector<std::string> targets;
    targets.emplace_back("/report/summary");
    for (const int k : {10, 5, 20, 3}) {
      targets.push_back("/report/ports/top?k=" + std::to_string(k));
    }
    targets.emplace_back("/healthz");
    std::unordered_set<inventory::CountryId> countries;
    for (const auto& device : db.devices()) {
      if (countries.insert(device.country).second) {
        targets.push_back("/report/country/" +
                          percent_encode(db.country_name(device.country)));
      }
      if (countries.size() >= 24) break;
    }
    for (std::size_t i = 0; i < db.isps().size() && i < 32; ++i) {
      targets.push_back("/report/isp/" + percent_encode(db.isps()[i].name));
    }
    const std::size_t stride = std::max<std::size_t>(1, db.size() / 192);
    for (std::size_t i = 0; i < db.size(); i += stride) {
      targets.push_back("/report/device/" + db.devices()[i].ip.to_string() +
                        "/timeline");
    }
    return targets;
  }();
  return instance;
}

/// Zipf(s) over [0, n): precomputed CDF + binary search, sampled with
/// the project Rng so runs are replayable.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  std::size_t next(util::Rng& rng) const {
    const auto it =
        std::lower_bound(cdf_.begin(), cdf_.end(), rng.uniform01());
    return static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

void BM_ServeQuery(benchmark::State& state) {
  const auto& w = bench_workload();
  // The frozen baseline snapshot (epoch 1): the batch pipeline's final
  // report over the whole workload.
  static const auto baseline = [] {
    core::AnalysisPipeline pipeline(bench_workload().scenario.inventory,
                                    bench_study_config().pipeline);
    for (const auto& b : bench_workload().batches) pipeline.observe(b);
    return std::make_shared<const core::Report>(pipeline.finalize());
  }();

  std::atomic<std::shared_ptr<const serve::Snapshot>> slot{
      std::make_shared<const serve::Snapshot>(serve::Snapshot{1, baseline})};

  const bool with_ingest = state.range(1) != 0;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> published{0};
  std::thread ingest;
  if (with_ingest) {
    // Replays the store through fresh StreamingStudies for as long as the
    // measurement runs, publishing every new epoch into the provider slot
    // (offset by the epochs of earlier passes so the stamp stays
    // monotonic — regressing it would resurrect stale cache entries).
    ingest = std::thread([&w, &slot, &stop, &published] {
      core::PipelineOptions pipeline_options = bench_study_config().pipeline;
      core::StreamOptions stream_options;
      stream_options.snapshot_every = 8;
      std::uint64_t base = 1;  // the frozen baseline owns epoch 1
      while (!stop.load(std::memory_order_acquire)) {
        util::TempDir dir;
        telescope::FlowTupleStore store(dir.path());
        core::StreamingStudy stream(w.scenario.inventory, store,
                                    pipeline_options, stream_options);
        std::uint64_t last = 0;
        for (const auto& b : w.batches) {
          if (stop.load(std::memory_order_acquire)) break;
          store.put(b);
          stream.poll_once();
          const auto pub = stream.latest_published();
          if (pub != nullptr && pub->epoch != last) {
            last = pub->epoch;
            slot.store(std::make_shared<const serve::Snapshot>(serve::Snapshot{
                base + pub->epoch,
                std::shared_ptr<const core::Report>(pub, &pub->report)}));
            published.fetch_add(1, std::memory_order_relaxed);
          }
        }
        base += last;
      }
    });
  }

  obs::Registry::instance().reset();
  serve::ServerOptions options;
  options.port = 0;
  options.threads = static_cast<unsigned>(state.range(0));
  serve::ReportServer server(
      w.scenario.inventory,
      [&slot] { return *slot.load(std::memory_order_acquire); }, options);
  server.start();

  const auto& targets = serve_targets();
  const ZipfSampler zipf(targets.size(), 1.0);
  util::Rng rng(11);
  serve::HttpClient client(server.port());
  std::vector<std::uint64_t> latencies_ns;
  latencies_ns.reserve(1 << 16);
  for (auto _ : state) {
    const auto& target = targets[zipf.next(rng)];
    const auto t0 = std::chrono::steady_clock::now();
    auto response = client.get(target);
    const auto t1 = std::chrono::steady_clock::now();
    if (!response) {
      // Idle-timeout close mid-run; reconnect and keep going.
      client = serve::HttpClient(server.port());
      continue;
    }
    latencies_ns.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
    benchmark::DoNotOptimize(response->status);
  }
  stop.store(true, std::memory_order_release);
  if (ingest.joinable()) ingest.join();
  const auto cache = server.cache_stats();
  server.stop();

  std::sort(latencies_ns.begin(), latencies_ns.end());
  const auto percentile_us = [&latencies_ns](double q) {
    if (latencies_ns.empty()) return 0.0;
    const auto index = std::min(
        latencies_ns.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies_ns.size())));
    return static_cast<double>(latencies_ns[index]) / 1e3;
  };
  state.counters["p50_us"] = percentile_us(0.50);
  state.counters["p99_us"] = percentile_us(0.99);
  const double lookups = static_cast<double>(cache.hits + cache.misses);
  state.counters["cache_hit_pct"] =
      lookups > 0 ? 100.0 * static_cast<double>(cache.hits) / lookups : 0.0;
  state.counters["epochs"] =
      static_cast<double>(published.load(std::memory_order_relaxed));
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeQuery)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// --- Phase-based adversarial scenario engine ---------------------------
//
// One entry per built-in scenario (Arg(0) indexes builtin_scenario_names
// order; the label names it). Three stages of the scenario lifecycle:
//   BM_ScenarioPlan      ctor cost — inventory synthesis + campaign
//                        planning + truth-ledger construction
//   BM_ScenarioEmit      packet emission (base synth + campaign hooks);
//                        items/s is emitted packets
//   BM_ScenarioBatchRun  the full driver: write the hourly store (hostile
//                        hours included), batch-analyze with quarantine,
//                        render, and check every ground-truth claim. The
//                        `violations` counter must read 0.000 — a nonzero
//                        value here is a correctness regression surfacing
//                        in the perf log.

const std::vector<workload::ScenarioScript>& builtin_scripts() {
  static const auto instance = [] {
    std::vector<workload::ScenarioScript> scripts;
    for (const auto& name : workload::builtin_scenario_names()) {
      scripts.push_back(*workload::builtin_scenario(name));
    }
    return scripts;
  }();
  return instance;
}

void BM_ScenarioPlan(benchmark::State& state) {
  const auto& script =
      builtin_scripts()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    workload::ScenarioEngine engine(script);
    benchmark::DoNotOptimize(engine.truth().campaign_packets);
  }
  state.SetLabel(script.name);
}
BENCHMARK(BM_ScenarioPlan)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

void BM_ScenarioEmit(benchmark::State& state) {
  const auto& script =
      builtin_scripts()[static_cast<std::size_t>(state.range(0))];
  const workload::ScenarioEngine engine(script);
  std::uint64_t packets = 0;
  for (auto _ : state) {
    packets = 0;
    engine.emit([&packets](const net::PacketRecord&) { ++packets; });
    benchmark::DoNotOptimize(packets);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * packets));
  state.SetLabel(script.name);
}
BENCHMARK(BM_ScenarioEmit)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

void BM_ScenarioBatchRun(benchmark::State& state) {
  const auto& script =
      builtin_scripts()[static_cast<std::size_t>(state.range(0))];
  const workload::ScenarioEngine engine(script);
  std::uint64_t packets = 0;
  std::size_t violations = 0;
  std::size_t hostile = 0;
  for (auto _ : state) {
    util::TempDir dir;
    const auto run = core::run_scenario(engine, dir.path());
    packets = run.report.total_packets + run.report.unattributed_packets;
    violations = core::check_scenario(engine, run).size();
    hostile = static_cast<std::size_t>(run.hours_corrupt);
    benchmark::DoNotOptimize(run.rendered);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * packets));
  state.counters["violations"] = static_cast<double>(violations);
  state.counters["hostile_hours"] = static_cast<double>(hostile);
  state.SetLabel(script.name);
}
BENCHMARK(BM_ScenarioBatchRun)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
