// Table III: top 10 CPS services/protocols operated by compromised IoT
// devices (not mutually exclusive). Paper: Telvent OASyS DNA 20.0%, SNC
// GENe 18.3%, Niagara Fox 13.4%, MQTT 12.9%, Ethernet/IP 12.8%, ABB
// Ranger 9.1%, Siemens Spectrum PowerTG 5.9%, Modbus TCP 5.5%,
// Foxboro 5.1%, Foundation Fieldbus HSE 3.0%; 31 protocols overall.
#include <cstdio>

#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"

using namespace iotscope;

int main() {
  bench::print_header("Table III", "Top 10 CPS realms hosting compromised IoT devices");
  const auto& result = bench::study();
  const auto& catalog = result.scenario.inventory.catalog();
  const auto& rows = result.character.cps_protocols;
  const double cps_total =
      static_cast<double>(result.report.discovered_cps);

  analysis::TextTable table(
      {"#", "Service/Protocol", "Common applications", "Devices", "%"});
  for (std::size_t i = 0; i < rows.size() && i < 10; ++i) {
    const auto& [proto, count] = rows[i];
    const auto& info = catalog.cps_protocols()[proto];
    std::string app = info.application.substr(0, 48);
    if (info.application.size() > 48) app += "...";
    table.add_row({std::to_string(i + 1), info.name, app,
                   util::with_commas(count),
                   bench::pct(static_cast<double>(count), cps_total)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("protocols operated by compromised CPS devices: %zu "
              "(paper: 31)\n",
              result.character.cps_protocols_in_use);
  std::printf("paper top 3: Telvent OASyS DNA 20.0%%, SNC GENe 18.3%%, "
              "Niagara Fox 13.4%%\n");
  return 0;
}
