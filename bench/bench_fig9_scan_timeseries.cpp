// Figure 9: overall TCP scanning packets toward destination IPs and ports
// by (a) CPS and (b) consumer devices. Paper hourly means: CPS ~318K
// packets over ~215K destinations across ~576 ports (min 271 / max 987);
// consumer ~382K packets over ~280K destinations across ~246 ports, with
// the interval-119 spike where a Dominican IP camera scanned 10,249
// ports on 55 destinations.
#include <algorithm>
#include <cstdio>

#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"

using namespace iotscope;

namespace {
void print_series(const char* label, const core::TrafficSeries& series) {
  std::printf("-- %s --\n", label);
  analysis::TextTable table({"Hour", "Scan packets", "Dst IPs", "Dst ports"});
  for (int h = 0; h < series.packets.size(); h += 8) {
    table.add_row({std::to_string(h + 1),
                   std::to_string(static_cast<long>(series.packets.at(h))),
                   std::to_string(static_cast<long>(series.dst_ips.at(h))),
                   std::to_string(static_cast<long>(series.dst_ports.at(h)))});
  }
  std::printf("%s", table.render().c_str());
  const auto ports = series.dst_ports.values();
  const double pmin = *std::min_element(ports.begin(), ports.end());
  const double pmax = *std::max_element(ports.begin(), ports.end());
  std::printf("hourly means: packets %.0f, dst IPs %.0f, dst ports %.0f "
              "(min %.0f / max %.0f)\n\n",
              series.packets.mean(), series.dst_ips.mean(),
              series.dst_ports.mean(), pmin, pmax);
}
}  // namespace

int main() {
  bench::print_header("Figure 9", "Hourly TCP scanning by realm");
  const auto& report = bench::study().report;

  print_series("(a) CPS", report.scan_series.cps);
  print_series("(b) Consumer", report.scan_series.consumer);

  const auto& consumer_ports = report.scan_series.consumer.dst_ports;
  std::printf("consumer dst-port peak: %.0f ports at hour %d (paper: 10.5K "
              "at interval 119)\n",
              consumer_ports.max(), consumer_ports.argmax() + 1);
  const auto& r = report.scan_device_packet_correlation;
  std::printf("Pearson r(hourly #scanners, scan packets) = %.3f, p = %.2g "
              "(paper: r ~ 0, p > 0.05 — no linear correlation)\n",
              r.r, r.p_value);
  std::printf("TCP scanners: %zu devices, %s consumer (paper: 12,363, 55%%)\n",
              report.scanner_devices,
              bench::pct(static_cast<double>(report.scanner_consumer_devices),
                         static_cast<double>(report.scanner_devices)).c_str());
  return 0;
}
