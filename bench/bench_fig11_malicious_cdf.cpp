// Figure 11: CDF of packets received from the explored IoT devices (the
// paper's 8,839) and from the subset flagged as malicious by the threat
// repository (N = 816). Paper: ~10% of explored devices sent <= 50
// packets, ~15% sent >= 10K, <2% sent >= 100K, 15 devices sent > 1M
// (max 6.25M).
#include <cstdio>

#include "analysis/ecdf.hpp"
#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"

using namespace iotscope;

int main() {
  bench::print_header("Figure 11", "CDF of packets from explored vs flagged devices");
  const auto& result = bench::study();
  const auto& mal = result.malicious;
  const double factor = bench::upscale_per_device_factor();

  auto upscale = [&](std::vector<double> xs) {
    for (auto& x : xs) x *= factor;
    return xs;
  };
  analysis::Ecdf explored(upscale(mal.explored_packets));
  analysis::Ecdf flagged(upscale(mal.flagged_packets));

  analysis::TextTable table(
      {"Packets (paper scale)", "CDF explored", "CDF flagged"});
  for (const double x : {10.0, 50.0, 100.0, 1000.0, 10000.0, 100000.0,
                         1000000.0, 10000000.0}) {
    table.add_row({util::human_count(x), util::fixed(explored.at(x), 3),
                   util::fixed(flagged.at(x), 3)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("explored devices: %zu (paper: 8,839; scale target %s)\n",
              mal.explored_devices,
              bench::upscale_devices(static_cast<double>(mal.explored_devices))
                  .c_str());
  std::printf("flagged devices: %zu = %s of explored (paper: 816 = 9.2%%)\n",
              mal.flagged_devices,
              bench::pct(static_cast<double>(mal.flagged_devices),
                         static_cast<double>(mal.explored_devices)).c_str());
  std::printf("explored sending >= 10K packets: %s (paper: ~15%%); >= 100K: "
              "%s (paper: <2%%)\n",
              bench::pct(explored.tail_at_least(10000.0) *
                             static_cast<double>(explored.size()),
                         static_cast<double>(explored.size())).c_str(),
              bench::pct(explored.tail_at_least(100000.0) *
                             static_cast<double>(explored.size()),
                         static_cast<double>(explored.size())).c_str());
  std::size_t over_1m = 0;
  double max_packets = 0;
  for (const double x : explored.sorted()) {
    if (x > 1e6) ++over_1m;
    max_packets = x;
  }
  std::printf("devices over 1M packets: %zu, max %s (paper: 15, max 6.25M; "
              "run with equal inventory/traffic scales of 1.0 to reproduce "
              "absolute tails — scripted heroes are understated by the "
              "inventory scale here)\n",
              over_1m, util::human_count(max_packets).c_str());
  return 0;
}
