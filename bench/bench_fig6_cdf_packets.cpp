// Figure 6: CDF of scanning and backscatter packets per device. Paper:
// about half of the DoS victims generated fewer than 170 backscatter
// packets, ~17% generated 10,000 or more, and only 7 devices exceeded
// 100,000 (5 of them CPS).
#include <cstdio>

#include "analysis/ecdf.hpp"
#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"

using namespace iotscope;

int main() {
  bench::print_header("Figure 6", "CDF of per-device scanning and backscatter packets");
  const auto& result = bench::study();
  const auto& report = result.report;
  const double factor = bench::upscale_per_device_factor();

  std::vector<double> scanning;
  std::vector<double> backscatter;
  std::size_t heavy_victims = 0;
  std::size_t heavy_victims_cps = 0;
  for (const auto& ledger : report.devices) {
    if (ledger.tcp_scan > 0) {
      scanning.push_back(static_cast<double>(ledger.tcp_scan) * factor);
    }
    const auto bs = ledger.backscatter();
    if (bs > 0) {
      const double upscaled = static_cast<double>(bs) * factor;
      backscatter.push_back(upscaled);
      if (upscaled >= 100000) {
        ++heavy_victims;
        if (result.scenario.inventory.devices()[ledger.device].is_cps()) {
          ++heavy_victims_cps;
        }
      }
    }
  }
  analysis::Ecdf scan_cdf(std::move(scanning));
  analysis::Ecdf bs_cdf(std::move(backscatter));

  analysis::TextTable table(
      {"Packets (paper scale)", "CDF scanning", "CDF backscatter"});
  for (const double x : {10.0, 100.0, 170.0, 1000.0, 10000.0, 100000.0,
                         1000000.0, 10000000.0}) {
    table.add_row({util::human_count(x), util::fixed(scan_cdf.at(x), 3),
                   util::fixed(bs_cdf.at(x), 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("backscatter median: %s packets (paper: < 170)\n",
              util::human_count(bs_cdf.quantile(0.5)).c_str());
  std::printf("victims with >= 10K backscatter packets: %s (paper: ~17%%)\n",
              bench::pct(bs_cdf.tail_at_least(10000.0) *
                             static_cast<double>(bs_cdf.size()),
                         static_cast<double>(bs_cdf.size())).c_str());
  std::printf("victims with >= 100K packets: %zu, of which CPS %zu "
              "(paper: 7, of which 5 CPS; the scripted case-study victims "
              "carry traffic-scaled budgets and are understated by the "
              "inventory scale in this per-device view)\n",
              heavy_victims, heavy_victims_cps);
  return 0;
}
