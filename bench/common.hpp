// Shared bench harness: every bench binary regenerates one of the paper's
// tables or figures at a reduced (environment-overridable) scale and
// prints paper-reported values next to the measured ones.
//
// Environment:
//   IOTSCOPE_BENCH_INVENTORY_SCALE  (default 0.10)
//   IOTSCOPE_BENCH_TRAFFIC_SCALE    (default 0.02)
//   IOTSCOPE_BENCH_SEED             (default 20170412)
#pragma once

#include <string>

#include "core/iotscope.hpp"

namespace iotscope::bench {

/// The bench-scale study, computed once per process.
const core::StudyResult& study();

/// The configuration study() ran with.
const core::StudyConfig& study_config();

/// Prints the standard experiment banner.
void print_header(const char* experiment, const char* title);

/// "12.3%" of num over den (0 if den == 0).
std::string pct(double num, double den, int decimals = 1);

/// Formats a count scaled *back up* to paper scale for device-count
/// comparisons (divides by inventory scale).
std::string upscale_devices(double measured);

/// Formats a packet count scaled back to paper scale (divides by traffic
/// scale).
std::string upscale_packets(double measured);

/// Per-device volumes scale by traffic_scale / inventory_scale (the total
/// shrinks with traffic, the population with inventory), so the factor
/// back to paper scale is inventory_scale / traffic_scale. Note: scripted
/// single-device case studies carry traffic-scaled budgets and are
/// understated by inventory_scale in this view.
double upscale_per_device_factor();

}  // namespace iotscope::bench
