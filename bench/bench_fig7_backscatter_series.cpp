// Figure 7: distribution of generated backscatter packets by CPS and
// consumer IoT devices over the 143 hours, with the attack spikes the
// paper narrates (intervals 6-8 and 53-56: a Chinese Ethernet/IP PLC
// producing >99% of the interval's backscatter; 99 & 127: a second
// Chinese PLC; 94: a Swiss Telvent device; 49: a Dutch printer; 81: a
// British printer).
#include <cstdio>

#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"

using namespace iotscope;

int main() {
  bench::print_header("Figure 7", "Hourly backscatter by realm with attack spikes");
  const auto& result = bench::study();
  const auto& report = result.report;
  const auto& db = result.scenario.inventory;

  analysis::TextTable series({"Hour", "CPS", "Consumer"});
  for (int h = 0; h < report.backscatter_series.cps.size(); h += 8) {
    series.add_row({std::to_string(h + 1),
                    std::to_string(static_cast<long>(
                        report.backscatter_series.cps.at(h))),
                    std::to_string(static_cast<long>(
                        report.backscatter_series.consumer.at(h)))});
  }
  std::printf("%s\n", series.render().c_str());

  std::printf("-- inferred attack intervals (dominant-victim spikes) --\n");
  analysis::TextTable spikes({"Hour (1-based)", "Backscatter pkts",
                              "Top victim", "Realm", "Country", "Share"});
  for (const auto& spike : report.dos_spikes) {
    const auto& device = db.devices()[spike.top_victim];
    spikes.add_row(
        {std::to_string(spike.interval + 1),
         util::with_commas(static_cast<std::uint64_t>(spike.backscatter_packets)),
         device.ip.to_string(), inventory::to_string(device.category),
         db.country_name(device.country),
         util::percent(100.0 * spike.top_victim_share)});
  }
  std::printf("%s\n", spikes.render().c_str());
  std::printf("paper spikes: 6-8 & 53-56 (CN PLC, >99%%), 99 & 127 (CN PLC, "
              "91-97%%), 94 (CH Telvent, 85%%), 49 (NL printer, 98%%), 81 "
              "(UK printer, 85%%)\n");
  std::printf("CPS share of backscatter: %s (paper: ~73%%); CPS victims: %s "
              "(paper: 53%%)\n",
              bench::pct(static_cast<double>(report.backscatter_packets.cps),
                         static_cast<double>(report.backscatter_total)).c_str(),
              bench::pct(static_cast<double>(report.dos_victims_cps),
                         static_cast<double>(report.dos_victims)).c_str());
  std::printf("Mann-Whitney U hourly backscatter CPS vs consumer: U=%.0f, "
              "Z=%.2f, p=%.2g (paper: U=6061, Z=-5.95, p<0.0001)\n",
              report.backscatter_mwu.u, report.backscatter_mwu.z,
              report.backscatter_mwu.p_value);
  return 0;
}
