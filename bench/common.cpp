#include "common.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/strings.hpp"

namespace iotscope::bench {

namespace {
double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

core::StudyConfig make_config() {
  core::StudyConfig config = core::StudyConfig::bench_default();
  config.scenario.inventory_scale =
      env_double("IOTSCOPE_BENCH_INVENTORY_SCALE", 0.10);
  config.scenario.traffic_scale =
      env_double("IOTSCOPE_BENCH_TRAFFIC_SCALE", 0.02);
  config.scenario.seed = static_cast<std::uint64_t>(
      env_double("IOTSCOPE_BENCH_SEED", 20170412));
  return config;
}
}  // namespace

const core::StudyConfig& study_config() {
  static const core::StudyConfig config = make_config();
  return config;
}

const core::StudyResult& study() {
  static const core::StudyResult result = core::run_study(study_config());
  return result;
}

void print_header(const char* experiment, const char* title) {
  const auto& config = study_config();
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment, title);
  std::printf("scales: inventory %.3g, traffic %.3g (paper scale = 1, 1); "
              "seed %llu\n",
              config.scenario.inventory_scale, config.scenario.traffic_scale,
              static_cast<unsigned long long>(config.scenario.seed));
  std::printf("================================================================\n");
}

std::string pct(double num, double den, int decimals) {
  return util::percent(den > 0 ? 100.0 * num / den : 0.0, decimals);
}

std::string upscale_devices(double measured) {
  const double scale = study_config().scenario.inventory_scale;
  return util::with_commas(static_cast<std::uint64_t>(
      scale > 0 ? measured / scale + 0.5 : measured));
}

std::string upscale_packets(double measured) {
  const double scale = study_config().scenario.traffic_scale;
  return util::human_count(scale > 0 ? measured / scale : measured);
}

double upscale_per_device_factor() {
  const auto& scenario = study_config().scenario;
  return scenario.traffic_scale > 0
             ? scenario.inventory_scale / scenario.traffic_scale
             : 1.0;
}

}  // namespace iotscope::bench
