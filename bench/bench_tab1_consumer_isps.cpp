// Table I: top 5 ISPs hosting compromised consumer IoT devices. Paper:
// JSC ER-Telecom (Russia) 27.6%, PT Telkom (Indonesia) 3.6%, Korea
// Telecom 2.2%, PLDT (Philippines) 2.0%, TOT (Thailand) 1.8%; 1,762
// distinct ISPs overall.
#include <cstdio>

#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"

using namespace iotscope;

int main() {
  bench::print_header("Table I", "Top 5 ISPs hosting compromised consumer IoT devices");
  const auto& result = bench::study();
  const auto& db = result.scenario.inventory;
  const auto& isps = result.character.consumer_isps;

  double total = 0;
  for (const auto& row : isps) total += static_cast<double>(row.devices);

  analysis::TextTable table({"#", "ISP", "Country", "Devices", "%"});
  for (std::size_t i = 0; i < isps.size() && i < 5; ++i) {
    const auto& row = isps[i];
    table.add_row({std::to_string(i + 1), db.isp_name(row.isp),
                   db.country_name(db.isps()[row.isp].country),
                   util::with_commas(row.devices),
                   bench::pct(static_cast<double>(row.devices), total)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("distinct ISPs hosting compromised consumer devices: %zu "
              "(paper: 1,762)\n",
              isps.size());
  std::printf("paper top 5: JSC ER-Telecom 27.6%%, PT Telkom 3.6%%, Korea "
              "Telecom 2.2%%, PLDT 2.0%%, TOT 1.8%%\n");
  return 0;
}
