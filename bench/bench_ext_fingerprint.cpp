// Extension (Discussion §VI): fuzzy fingerprinting of unindexed IoT
// devices. The scenario plants unindexed compromised IoT bots (telnet/
// CWMP/HTTP scanners whose IPs the inventory never saw) amid background
// radiation; the fingerprinter recovers them from behaviour alone. We
// report recall/precision against ground truth across thresholds — an
// evaluation the paper could not run on real data.
#include <algorithm>
#include <cstdio>
#include <set>

#include "analysis/table.hpp"
#include "common.hpp"
#include "core/fingerprint.hpp"
#include "util/strings.hpp"

using namespace iotscope;

int main() {
  bench::print_header("Extension: fingerprinting",
                      "Fuzzy identification of non-indexed IoT devices");
  const auto& result = bench::study();
  const auto& truth = result.scenario.truth;

  std::set<std::uint32_t> planted;
  for (const auto& device : truth.unindexed) {
    planted.insert(device.ip.value());
  }
  std::printf("planted unindexed IoT bots: %zu; sustained unknown-source "
              "profiles at the telescope: %zu\n\n",
              planted.size(), result.report.unknown_sources.size());

  analysis::TextTable table({"IoT-port share thr.", "Candidates", "True",
                             "Precision", "Recall"});
  for (const double threshold : {0.3, 0.5, 0.7, 0.9}) {
    core::FingerprintOptions options;
    options.iot_port_share_threshold = threshold;
    const auto fp = core::fingerprint_unindexed(result.report, options);
    std::size_t correct = 0;
    for (const auto& candidate : fp.candidates) {
      if (planted.count(candidate.ip.value())) ++correct;
    }
    table.add_row(
        {util::fixed(threshold, 1), std::to_string(fp.candidates.size()),
         std::to_string(correct),
         bench::pct(static_cast<double>(correct),
                    static_cast<double>(fp.candidates.size())),
         bench::pct(static_cast<double>(correct),
                    static_cast<double>(planted.size()))});
  }
  std::printf("%s\n", table.render().c_str());

  const auto fp = core::fingerprint_unindexed(result.report);
  std::printf("sample candidates (default thresholds):\n");
  for (std::size_t i = 0; i < fp.candidates.size() && i < 5; ++i) {
    const auto& c = fp.candidates[i];
    std::printf("  %-15s %8s pkts, IoT-port share %s, SYN share %s, hours "
                "%d-%d %s\n",
                c.ip.to_string().c_str(),
                util::with_commas(c.packets).c_str(),
                util::percent(100 * c.iot_port_share, 0).c_str(),
                util::percent(100 * c.syn_share, 0).c_str(),
                c.first_interval + 1, c.last_interval + 1,
                planted.count(c.ip.value()) ? "[planted bot]" : "[other]");
  }
  std::printf("\nrecall is bounded by emission: thin bots below the "
              "profiling floor stay invisible, exactly the operational "
              "blind spot the paper's discussion anticipates\n");
  return 0;
}
