// Table V: top 14 protocols/ports with the most TCP scanning packets from
// exploited IoT devices (CP = 93.3%). Paper: Telnet 50.2% (63.4% from
// consumer; 643 consumer / 553 CPS devices), HTTP 9.4%, SSH 7.7%,
// BackroomNet 6.2% (one CPS device), CWMP 4.5%, ...
#include <cstdio>

#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"
#include "workload/spec.hpp"

using namespace iotscope;

int main() {
  bench::print_header("Table V", "Top scanned protocols/ports (TCP scanning packets)");
  const auto& report = bench::study().report;
  const double total = static_cast<double>(report.tcp_scan_total);
  const auto& spec = workload::scan_services();

  analysis::TextTable table({"Protocol", "Measured %", "Paper %",
                             "Consumer pkt %", "Consumer dev", "CPS dev"});
  double named_cp = 0;
  for (std::size_t s = 0; s < report.scan_services.size(); ++s) {
    const auto& row = report.scan_services[s];
    if (row.name == "Other") continue;
    const double share = total > 0 ? 100.0 * static_cast<double>(row.packets) / total : 0;
    named_cp += share;
    table.add_row({row.name, util::percent(share),
                   util::percent(spec[s].packet_share_pct),
                   bench::pct(static_cast<double>(row.consumer_packets),
                              static_cast<double>(row.packets)),
                   std::to_string(row.consumer_devices),
                   std::to_string(row.cps_devices)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("cumulative share of the 14 named services: %.1f%% "
              "(paper: 93.3%%)\n", named_cp);
  std::printf("total TCP scanning packets: %s (paper: slightly over 100M; "
              "scale-equivalent %s)\n",
              util::human_count(total).c_str(),
              bench::upscale_packets(total).c_str());
  return 0;
}
