// Figure 2: cumulative number of daily discovered compromised CPS and
// consumer IoT devices. Paper: ~12,000 (46%) on day one, then ~2,900
// newly discovered per day, reaching 26,881.
#include <cstdio>

#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"
#include "util/timebase.hpp"

using namespace iotscope;

int main() {
  bench::print_header("Figure 2", "Cumulative daily discovered compromised IoT devices");
  const auto& report = bench::study().report;

  analysis::TextTable table({"Day", "All IoT (cum.)", "Consumer (cum.)",
                             "CPS (cum.)", "Newly discovered"});
  std::size_t prev = 0;
  for (int d = 0; d < util::AnalysisWindow::kDays; ++d) {
    const std::size_t consumer =
        report.cumulative_by_day_consumer[static_cast<std::size_t>(d)];
    const std::size_t cps =
        report.cumulative_by_day_cps[static_cast<std::size_t>(d)];
    const std::size_t cum = consumer + cps;
    table.add_row({util::format_window_day(d), util::with_commas(cum),
                   util::with_commas(consumer), util::with_commas(cps),
                   util::with_commas(cum - prev)});
    prev = cum;
  }
  std::printf("%s\n", table.render().c_str());

  const double total = static_cast<double>(report.discovered_total());
  const double day1 = static_cast<double>(report.cumulative_by_day_consumer[0] +
                                          report.cumulative_by_day_cps[0]);
  std::printf("day-1 share: %s  (paper: ~46%%)\n",
              bench::pct(day1, total).c_str());
  std::printf("mean newly discovered per later day: %s  (paper: ~2,900 at "
              "full scale)\n",
              util::with_commas(static_cast<std::uint64_t>((total - day1) / 5.0))
                  .c_str());
  std::printf("total discovered: %s  (paper: 26,881; scale-adjusted paper "
              "target: %s)\n",
              util::with_commas(report.discovered_total()).c_str(),
              util::with_commas(static_cast<std::uint64_t>(
                  26881 * bench::study_config().scenario.inventory_scale)).c_str());
  return 0;
}
