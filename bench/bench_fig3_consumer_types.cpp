// Figure 3: compromised consumer IoT devices by type. Paper: routers
// 52.4%, IP cameras 25.2%, printers 18.0%, network storage 3.6%,
// TV box/DVR ~0.5%, electric hubs/outlets 0.1%.
#include <cstdio>

#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"

using namespace iotscope;

int main() {
  bench::print_header("Figure 3", "Compromised consumer IoT devices by type");
  const auto& result = bench::study();
  const auto& types = result.character.consumer_types;

  static const double kPaperPct[inventory::kConsumerTypeCount] = {
      52.4, 25.2, 18.0, 3.6, 0.5, 0.1};

  double total = 0;
  for (const auto count : types) total += static_cast<double>(count);

  analysis::TextTable table({"Type", "Devices", "Measured %", "Paper %"});
  for (int t = 0; t < inventory::kConsumerTypeCount; ++t) {
    table.add_row({inventory::to_string(static_cast<inventory::ConsumerType>(t)),
                   util::with_commas(types[static_cast<std::size_t>(t)]),
                   bench::pct(static_cast<double>(types[static_cast<std::size_t>(t)]), total),
                   util::percent(kPaperPct[t])});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("compromised consumer devices total: %.0f (paper: 15,299)\n",
              total);
  return 0;
}
