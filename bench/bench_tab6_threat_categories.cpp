// Table VI: identified threats among the flagged IoT devices (categories
// not mutually exclusive). Paper: Scanning 96.3%, Miscellaneous 70.3%,
// Brute force (SSH) 30.9%, Spam 27.8%, Malware 14.3% (91 CPS + 26
// consumer devices, 85 resp. 23 of which also scanned), Phishing 0.6%.
#include <cstdio>

#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"

using namespace iotscope;

int main() {
  bench::print_header("Table VI", "Identified threats among flagged IoT devices");
  const auto& mal = bench::study().malicious;
  const double flagged = static_cast<double>(mal.flagged_devices);

  static const double kPaperPct[intel::kThreatCategoryCount] = {
      96.3, 70.3, 30.9, 27.8, 14.3, 0.6};

  analysis::TextTable table(
      {"Threat category", "Devices", "Measured %", "Paper %"});
  for (int c = 0; c < intel::kThreatCategoryCount; ++c) {
    table.add_row(
        {intel::to_string(static_cast<intel::ThreatCategory>(c)),
         std::to_string(mal.category_devices[static_cast<std::size_t>(c)]),
         bench::pct(static_cast<double>(
                        mal.category_devices[static_cast<std::size_t>(c)]),
                    flagged),
         util::percent(kPaperPct[c])});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("flagged devices: %zu of %zu explored (%s; paper: 816 of "
              "8,839 = 9.2%%)\n",
              mal.flagged_devices, mal.explored_devices,
              bench::pct(flagged, static_cast<double>(mal.explored_devices))
                  .c_str());
  std::printf("malware-linked: %zu CPS (%zu also scanning) + %zu consumer "
              "(%zu also scanning); paper: 91 CPS (85) + 26 consumer (23)\n",
              mal.malware_cps, mal.malware_scanning_cps, mal.malware_consumer,
              mal.malware_scanning_consumer);
  return 0;
}
