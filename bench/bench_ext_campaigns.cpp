// Extension (paper's concluding future work): clustering probing
// campaigns — "identifying and clustering IoT botnets and their illicit
// activities by solely scrutinizing passive measurements". Scanners are
// clustered by dominant service and window overlap; the dominant Telnet
// campaign corresponds to the Mirai-style population of Table V.
#include <cstdio>

#include "analysis/table.hpp"
#include "common.hpp"
#include "core/campaigns.hpp"
#include "util/strings.hpp"

using namespace iotscope;

int main() {
  bench::print_header("Extension: campaigns",
                      "Probing-campaign clustering over inferred scanners");
  const auto& result = bench::study();
  const auto campaigns =
      core::cluster_campaigns(result.report, result.scenario.inventory);

  analysis::TextTable table({"#", "Service", "Devices", "Consumer", "Packets",
                             "Window (hours)", "Duration"});
  for (std::size_t i = 0; i < campaigns.campaigns.size() && i < 12; ++i) {
    const auto& c = campaigns.campaigns[i];
    table.add_row({std::to_string(i + 1), c.service_name,
                   std::to_string(c.devices.size()),
                   std::to_string(c.consumer_devices),
                   util::with_commas(c.packets),
                   std::to_string(c.start_interval + 1) + "-" +
                       std::to_string(c.end_interval + 1),
                   std::to_string(c.duration_hours()) + "h"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("campaigns: %zu; scanners clustered: %zu; unclustered "
              "(small/isolated): %zu\n",
              campaigns.campaigns.size(), campaigns.devices_clustered,
              campaigns.devices_unclustered);
  std::printf("expected shape: one dominant window-spanning Telnet campaign "
              "(the Mirai-era population, ~1,196 devices at paper scale), "
              "with HTTP/Kerberos/iRDMI campaigns dominated by consumer "
              "devices and MS-DS/21677 ones by CPS devices\n");
  return 0;
}
