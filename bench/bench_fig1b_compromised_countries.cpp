// Figure 1b: top 15 countries hosting compromised IoT devices, with the
// percent-compromised line. Paper: Russia 24.5% of compromised devices
// (31% of its fleet), China 8.6%, U.S. 8.1% (2.4% of its fleet); 161
// countries host compromised devices overall.
#include <cstdio>

#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"

using namespace iotscope;

int main() {
  bench::print_header("Figure 1b", "Top 15 countries hosting compromised IoT devices");
  const auto& result = bench::study();
  const auto& db = result.scenario.inventory;
  const auto& rows = result.character.by_country_compromised;
  const double total = static_cast<double>(result.report.discovered_total());

  analysis::TextTable table({"#", "Country", "Compromised", "CPS", "Consumer",
                             "% of compromised", "% of country fleet"});
  for (std::size_t i = 0; i < rows.size() && i < 15; ++i) {
    const auto& row = rows[i];
    table.add_row(
        {std::to_string(i + 1), db.country_name(row.country),
         util::with_commas(row.compromised()),
         util::with_commas(row.compromised_cps),
         util::with_commas(row.compromised_consumer),
         bench::pct(static_cast<double>(row.compromised()), total),
         util::percent(row.pct_compromised())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("countries hosting compromised devices: %zu  (paper: 161)\n",
              result.character.countries_with_compromised);
  std::printf("paper: Russia 24.5%% (31%% of fleet), China 8.6%%, U.S. 8.1%% "
              "(2.4%% of fleet); Thailand/Indonesia/Singapore/Turkey/Ukraine/"
              "India enter the top 15 despite small deployments\n");
  return 0;
}
