// Figure 1a: top 15 countries hosting deployed IoT devices, CPS vs
// consumer split. Paper: U.S. 25%, U.K. 6%, Russia 5.9%, China 5%;
// cumulative share of the top 15 = 69.3%.
#include <cstdio>

#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"

using namespace iotscope;

int main() {
  bench::print_header("Figure 1a", "Top 15 countries hosting deployed IoT devices");
  const auto& result = bench::study();
  const auto& db = result.scenario.inventory;
  const auto& rows = result.character.by_country_deployed;

  analysis::TextTable table(
      {"#", "Country", "Devices", "CPS", "Consumer", "% of inventory"});
  double cumulative = 0.0;
  const double total = static_cast<double>(db.size());
  for (std::size_t i = 0; i < rows.size() && i < 15; ++i) {
    const auto& row = rows[i];
    cumulative += 100.0 * static_cast<double>(row.deployed()) / total;
    table.add_row({std::to_string(i + 1), db.country_name(row.country),
                   util::with_commas(row.deployed()),
                   util::with_commas(row.deployed_cps),
                   util::with_commas(row.deployed_consumer),
                   bench::pct(static_cast<double>(row.deployed()), total)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("cumulative share of top 15: %.1f%%   (paper: 69.3%%)\n",
              cumulative);
  std::printf("paper top 4: U.S. 25%%, U.K. 6%%, Russia 5.9%%, China 5%%\n");
  return 0;
}
