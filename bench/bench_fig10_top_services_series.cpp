// Figure 10: distribution of TCP scanning packets toward the top 5
// targeted services over the 143 hours. Paper: Telnet dominates
// throughout; SSH spikes at intervals 32 (242K packets) and 69 (253K),
// driven by 5 devices; BackroomNet scanning by a single Canadian
// BACnet/IP device starts at interval 113 (~200K/hour for ~30 hours);
// HTTP rises gradually after interval 92; CWMP is the flattest series.
#include <cstdio>

#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"
#include "workload/spec.hpp"

using namespace iotscope;

int main() {
  bench::print_header("Figure 10", "Hourly TCP scanning toward the top 5 services");
  const auto& report = bench::study().report;

  static const char* kTop5[] = {"Telnet", "HTTP", "SSH", "BackroomNet",
                                "CWMP"};
  int indices[5];
  for (int i = 0; i < 5; ++i) {
    indices[i] = workload::scan_service_index(kTop5[i]);
  }

  analysis::TextTable table({"Hour", "Telnet", "HTTP", "SSH", "BackroomNet",
                             "CWMP"});
  for (int h = 0; h < util::AnalysisWindow::kHours; h += 4) {
    std::vector<std::string> row{std::to_string(h + 1)};
    for (int i = 0; i < 5; ++i) {
      const auto& series =
          report.scan_service_series[static_cast<std::size_t>(indices[i])];
      row.push_back(std::to_string(static_cast<long>(series.at(h))));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  const auto& ssh =
      report.scan_service_series[static_cast<std::size_t>(indices[2])];
  std::printf("SSH spike hours: %d and every hour above 5x its mean:",
              ssh.argmax() + 1);
  for (const int h : ssh.spikes(5.0)) std::printf(" %d", h + 1);
  std::printf(" (paper: 32 and 69)\n");

  const auto& backroom =
      report.scan_service_series[static_cast<std::size_t>(indices[3])];
  // "Start" = first hour of sustained volume (stray random-port probes
  // from other scanners occasionally graze port 3387 earlier).
  int backroom_start = -1;
  for (int h = 0; h < backroom.size(); ++h) {
    if (backroom.at(h) > 0.2 * backroom.max()) {
      backroom_start = h;
      break;
    }
  }
  std::printf("BackroomNet sustained scanning starts at hour %d (paper: 113)\n",
              backroom_start + 1);

  const auto& http =
      report.scan_service_series[static_cast<std::size_t>(indices[1])];
  double early = 0, late = 0;
  for (int h = 0; h < 91; ++h) early += http.at(h);
  for (int h = 91; h < http.size(); ++h) late += http.at(h);
  std::printf("HTTP mean per hour: %.0f before interval 92 vs %.0f after "
              "(paper: gradual increase after 92)\n",
              early / 91.0, late / 52.0);
  return 0;
}
