// Ablation: backscatter-taxonomy strictness (DESIGN.md §5). Compares the
// paper's taxonomy (full ICMP reply family + RST as backscatter) against
// a strict variant (EchoReply/DestUnreachable only, RST excluded) on
// victim recall and backscatter volume, plus spike-detection sensitivity
// across thresholds.
#include <cstdio>

#include "analysis/table.hpp"
#include "common.hpp"
#include "telescope/capture.hpp"
#include "util/strings.hpp"
#include "workload/synth.hpp"

using namespace iotscope;

namespace {
core::Report run_variant(const workload::Scenario& scenario,
                         const workload::ScenarioConfig& scenario_config,
                         const core::PipelineOptions& options) {
  core::AnalysisPipeline pipeline(scenario.inventory, options);
  telescope::TelescopeCapture capture(
      telescope::DarknetSpace(scenario_config.darknet),
      [&pipeline](net::FlowBatch&& batch) { pipeline.observe(batch); });
  workload::synthesize_into(scenario, scenario_config, capture);
  return pipeline.finalize();
}
}  // namespace

int main() {
  bench::print_header("Ablation", "Backscatter taxonomy strictness and spike threshold");
  const auto& base = bench::study();
  const auto& scenario_config = bench::study_config().scenario;

  // Variant A: the paper's taxonomy (the default; reuse the base study).
  const core::Report& paper_taxonomy = base.report;

  // Variant B: strict taxonomy.
  core::PipelineOptions strict;
  strict.taxonomy.full_icmp_reply_family = false;
  strict.taxonomy.rst_counts_as_backscatter = false;
  const core::Report strict_report =
      run_variant(base.scenario, scenario_config, strict);

  analysis::TextTable table({"Variant", "Victims", "Backscatter pkts",
                             "CPS share", "TCP-other pkts"});
  auto add = [&table](const char* name, const core::Report& r) {
    std::uint64_t tcp_other = 0;
    for (const auto& ledger : r.devices) tcp_other += ledger.tcp_other;
    table.add_row({name, std::to_string(r.dos_victims),
                   util::with_commas(r.backscatter_total),
                   bench::pct(static_cast<double>(r.backscatter_packets.cps),
                              static_cast<double>(r.backscatter_total)),
                   util::with_commas(tcp_other)});
  };
  add("paper taxonomy (reply family + RST)", paper_taxonomy);
  add("strict (EchoReply/DestUnreach only)", strict_report);
  std::printf("%s\n", table.render().c_str());

  std::printf("-- spike-detection sensitivity (threshold x hourly mean) --\n");
  analysis::TextTable spikes({"Threshold", "Spike hours detected",
                              "Mean top-victim share"});
  for (const double mult : {2.0, 3.0, 5.0, 8.0}) {
    core::PipelineOptions options;
    options.spike_multiple = mult;
    const core::Report r = run_variant(base.scenario, scenario_config, options);
    double share = 0;
    for (const auto& s : r.dos_spikes) share += s.top_victim_share;
    spikes.add_row({util::fixed(mult, 1), std::to_string(r.dos_spikes.size()),
                    r.dos_spikes.empty()
                        ? "-"
                        : util::percent(100.0 * share /
                                        static_cast<double>(r.dos_spikes.size()))});
  }
  std::printf("%s\n", spikes.render().c_str());
  std::printf("paper narrative: every major spike interval is dominated "
              "(85-99%%) by a single victim\n");
  return 0;
}
