// Table II: top 5 ISPs hosting compromised IoT devices in CPS realms.
// Paper: Rostelecom 4.5% (461), Korea Telecom 3.8% (429), Turk Telekom
// 3.2% (347), HiNet 2.5% (261), JSC ER-Telecom 1.8% (277); 2,279
// distinct ISPs overall.
#include <cstdio>

#include "analysis/table.hpp"
#include "common.hpp"
#include "util/strings.hpp"

using namespace iotscope;

int main() {
  bench::print_header("Table II", "Top 5 ISPs hosting compromised CPS IoT devices");
  const auto& result = bench::study();
  const auto& db = result.scenario.inventory;
  const auto& isps = result.character.cps_isps;

  double total = 0;
  for (const auto& row : isps) total += static_cast<double>(row.devices);

  analysis::TextTable table({"#", "ISP", "Country", "Devices", "%"});
  for (std::size_t i = 0; i < isps.size() && i < 5; ++i) {
    const auto& row = isps[i];
    table.add_row({std::to_string(i + 1), db.isp_name(row.isp),
                   db.country_name(db.isps()[row.isp].country),
                   util::with_commas(row.devices),
                   bench::pct(static_cast<double>(row.devices), total)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("distinct ISPs hosting compromised CPS devices: %zu "
              "(paper: 2,279)\n",
              isps.size());
  std::printf("paper top 5: Rostelecom 4.5%%, Korea Telecom 3.8%%, Turk "
              "Telekom 3.2%%, HiNet 2.5%%, JSC ER-Telecom 1.8%%\n");
  return 0;
}
