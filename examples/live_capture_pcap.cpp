// The real-tap ingestion path: synthesize one hour of telescope traffic,
// write it to a standard libpcap file (readable by tcpdump/Wireshark),
// then run the paper's pipeline over the pcap — pcap -> telescope capture
// -> hourly flowtuple files on disk -> streaming analysis. This is the
// workflow a darknet operator with a real tap would use; only the first
// step (synthesis) is replaced by their capture card.
//
// Usage: live_capture_pcap [work_dir]
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/iotscope.hpp"
#include "net/pcap.hpp"
#include "telescope/store.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

using namespace iotscope;

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::Info);
  const std::filesystem::path work_dir =
      argc > 1 ? argv[1] : std::filesystem::path("telescope-data");
  std::filesystem::create_directories(work_dir);

  // ---- 1. build a small scenario and record its packets to pcap ----
  workload::ScenarioConfig scenario_config;
  scenario_config.inventory_scale = 0.01;
  scenario_config.traffic_scale = 0.002;
  const auto scenario = workload::build_scenario(scenario_config);

  const auto pcap_path = work_dir / "telescope.pcap";
  std::uint64_t written = 0;
  {
    std::ofstream out(pcap_path, std::ios::binary | std::ios::trunc);
    net::PcapWriter writer(out);
    workload::synthesize_traffic(
        scenario, scenario_config,
        [&writer, &written](const net::PacketRecord& packet) {
          writer.write(packet);
          ++written;
        });
  }
  std::printf("wrote %s packets to %s (%s on disk) — standard libpcap, "
              "LINKTYPE_RAW\n",
              util::with_commas(written).c_str(), pcap_path.string().c_str(),
              util::human_count(static_cast<double>(
                  std::filesystem::file_size(pcap_path))).c_str());

  // ---- 2. replay the pcap through the telescope into hourly files ----
  telescope::FlowTupleStore store(work_dir / "flowtuples");
  {
    telescope::TelescopeCapture capture(
        telescope::DarknetSpace(scenario_config.darknet),
        [&store](net::FlowBatch&& batch) { store.put(batch); });
    std::ifstream in(pcap_path, std::ios::binary);
    net::PcapReader reader(in);
    net::PacketRecord packet;
    while (reader.next(packet)) capture.ingest(packet);
    capture.finish();
    std::printf("telescope: %s packets aggregated into %s flows over %d "
                "hourly files\n",
                util::with_commas(capture.stats().packets_observed).c_str(),
                util::with_commas(capture.stats().flows_emitted).c_str(),
                capture.stats().hours_rotated);
  }

  // ---- 3. stream the on-disk hourly files through the pipeline ----
  core::AnalysisPipeline pipeline(scenario.inventory);
  store.for_each([&pipeline](const net::FlowBatch& batch) {
    pipeline.observe(batch);
  });
  const auto report = pipeline.finalize();

  std::printf("\n== analysis over the pcap-derived flowtuple store ==\n");
  std::printf("compromised IoT devices inferred: %zu (%zu consumer / %zu "
              "CPS)\n",
              report.discovered_total(), report.discovered_consumer,
              report.discovered_cps);
  std::printf("traffic classes: %s scanning, %s UDP, %s backscatter, %s "
              "unattributed background\n",
              util::human_count(static_cast<double>(report.tcp_scan_total))
                  .c_str(),
              util::human_count(static_cast<double>(report.udp_total_packets))
                  .c_str(),
              util::human_count(static_cast<double>(report.backscatter_total))
                  .c_str(),
              util::human_count(static_cast<double>(report.unattributed_packets))
                  .c_str());
  std::printf("DoS victims: %zu; hourly files on disk: %zu\n",
              report.dos_victims, store.intervals().size());
  std::printf("\ninspect the capture yourself: tcpdump -nr %s | head\n",
              pcap_path.string().c_str());
  return 0;
}
