// DoS forensics: reproduces the paper's Section IV-B investigation — infer
// backscatter, identify victim devices, detect attack intervals, and
// narrate each event (dominant victim, realm, country, attacked service),
// the way the paper walks through the Chinese Ethernet/IP PLCs, the Swiss
// Telvent device, and the Dutch/British printers.
//
// Usage: dos_forensics [inventory_scale] [traffic_scale]
#include <algorithm>
#include <cstdio>

#include "analysis/ecdf.hpp"
#include "analysis/table.hpp"
#include "core/iotscope.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

using namespace iotscope;

namespace {
const char* guess_service(net::Port port) {
  switch (port) {
    case 44818:
      return "Ethernet/IP (Rockwell ControlLogix PLC)";
    case 502:
      return "Modbus TCP";
    case 20000:
      return "DNP3/Telvent range";
    case 102:
      return "Siemens S7";
    case 2404:
      return "IEC 60870-5-104";
    case 9100:
      return "printer (JetDirect)";
    case 80:
    case 8080:
      return "HTTP";
    case 23:
      return "Telnet";
    case 554:
      return "RTSP (camera)";
    default:
      return "unknown";
  }
}
}  // namespace

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::Info);
  core::StudyConfig config = core::StudyConfig::bench_default();
  if (argc > 1) config.scenario.inventory_scale = std::atof(argv[1]);
  if (argc > 2) config.scenario.traffic_scale = std::atof(argv[2]);

  const auto result = core::run_study(config);
  const auto& report = result.report;
  const auto& db = result.scenario.inventory;

  std::printf("== DoS victim inference (backscatter analysis) ==\n");
  std::printf("%zu IoT devices emitted backscatter (%zu CPS / %zu consumer), "
              "%s packets total, %s from CPS\n\n",
              report.dos_victims, report.dos_victims_cps,
              report.dos_victims - report.dos_victims_cps,
              util::human_count(static_cast<double>(report.backscatter_total))
                  .c_str(),
              util::percent(100.0 *
                            static_cast<double>(report.backscatter_packets.cps) /
                            static_cast<double>(report.backscatter_total))
                  .c_str());

  // ---- attack-event narration ----
  std::printf("== Inferred attack events (dominant-victim spikes) ==\n");
  for (const auto& spike : report.dos_spikes) {
    const auto& victim = db.devices()[spike.top_victim];
    const auto* ledger = report.traffic_for(spike.top_victim);
    // Recover the attacked service from the victim's dominant backscatter
    // source port: we look at what the workload says, but a real operator
    // would read it off the flowtuples; here the spike's metadata plus the
    // inventory give the same story the paper tells.
    std::printf(
        "hour %3d: %8s backscatter pkts, %5.1f%% from a single %s %s in %s",
        spike.interval + 1,
        util::with_commas(
            static_cast<std::uint64_t>(spike.backscatter_packets))
            .c_str(),
        100.0 * spike.top_victim_share,
        victim.is_cps() ? "CPS device" : "consumer device",
        victim.is_consumer()
            ? inventory::to_string(victim.consumer_type)
            : db.catalog().cps_protocol_name(victim.services.empty()
                                                 ? 0
                                                 : victim.services[0]).c_str(),
        db.country_name(victim.country).c_str());
    if (ledger != nullptr) {
      std::printf(" (device total: %s backscatter pkts)",
                  util::with_commas(ledger->backscatter()).c_str());
    }
    std::printf("\n");
  }

  // ---- per-victim dossier for the heaviest victims ----
  std::printf("\n== Victim dossiers (top 8 by backscatter volume) ==\n");
  std::vector<const core::DeviceTraffic*> victims;
  for (const auto& ledger : report.devices) {
    if (ledger.backscatter() > 0) victims.push_back(&ledger);
  }
  std::sort(victims.begin(), victims.end(),
            [](const core::DeviceTraffic* a, const core::DeviceTraffic* b) {
              return a->backscatter() > b->backscatter();
            });
  analysis::TextTable dossier({"Victim IP", "Realm", "Country",
                               "Backscatter pkts", "TCP/ICMP split",
                               "Flagged by threat repo"});
  for (std::size_t i = 0; i < victims.size() && i < 8; ++i) {
    const auto& ledger = *victims[i];
    const auto& device = db.devices()[ledger.device];
    dossier.add_row(
        {device.ip.to_string(), inventory::to_string(device.category),
         db.country_name(device.country),
         util::with_commas(ledger.backscatter()),
         util::percent(100.0 * static_cast<double>(ledger.tcp_backscatter) /
                       static_cast<double>(ledger.backscatter())) +
             " TCP",
         result.threats.flagged(device.ip) ? "yes" : "no"});
  }
  std::printf("%s\n", dossier.render().c_str());

  // ---- victim packet-count distribution (Fig 6's backscatter CDF) ----
  std::vector<double> counts;
  for (const auto* v : victims) {
    counts.push_back(static_cast<double>(v->backscatter()));
  }
  analysis::Ecdf cdf(std::move(counts));
  std::printf("victim backscatter quartiles (measured scale): p25=%s "
              "median=%s p75=%s max=%s\n",
              util::human_count(cdf.quantile(0.25)).c_str(),
              util::human_count(cdf.quantile(0.5)).c_str(),
              util::human_count(cdf.quantile(0.75)).c_str(),
              util::human_count(cdf.quantile(1.0)).c_str());

  std::printf("\nreference services behind common backscatter source ports: "
              "44818 -> %s; 9100 -> %s\n",
              guess_service(44818), guess_service(9100));
  return 0;
}
