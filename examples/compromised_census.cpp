// Compromised-device census: reproduces the paper's Section III workflow
// as an operational report — who is compromised, where, on which ISPs,
// and in which CPS realms — and exports the inventory + findings as CSV
// artifacts a security operator could act on (the paper's "operational/
// actionable cyber security" goal).
//
// Usage: compromised_census [output_dir]
#include <cstdio>
#include <filesystem>

#include "analysis/table.hpp"
#include "core/iotscope.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

using namespace iotscope;

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::Info);
  const std::filesystem::path out_dir =
      argc > 1 ? argv[1] : std::filesystem::path("census-output");
  std::filesystem::create_directories(out_dir);

  core::StudyConfig config = core::StudyConfig::bench_default();
  const auto result = core::run_study(config);
  const auto& db = result.scenario.inventory;
  const auto& report = result.report;
  const auto& character = result.character;

  // ---- headline census ----
  std::printf("== Compromised IoT device census ==\n");
  std::printf("%s devices correlated with darknet traffic "
              "(%s consumer, %s CPS) across %zu countries\n\n",
              util::with_commas(report.discovered_total()).c_str(),
              util::with_commas(report.discovered_consumer).c_str(),
              util::with_commas(report.discovered_cps).c_str(),
              character.countries_with_compromised);

  // ---- per-country report (Fig 1b) ----
  analysis::TextTable countries(
      {"Country", "Compromised", "CPS", "Consumer", "% of fleet"});
  for (std::size_t i = 0; i < character.by_country_compromised.size() && i < 15;
       ++i) {
    const auto& row = character.by_country_compromised[i];
    countries.add_row({db.country_name(row.country),
                       util::with_commas(row.compromised()),
                       util::with_commas(row.compromised_cps),
                       util::with_commas(row.compromised_consumer),
                       util::percent(row.pct_compromised())});
  }
  std::printf("%s\n", countries.render().c_str());
  countries.write_csv(out_dir / "compromised_by_country.csv");

  // ---- CPS exposure report (Table III) ----
  std::printf("Critical-infrastructure exposure (compromised CPS devices by "
              "protocol):\n");
  analysis::TextTable cps({"Protocol", "Application", "Devices"});
  for (std::size_t i = 0; i < character.cps_protocols.size() && i < 10; ++i) {
    const auto& [proto, count] = character.cps_protocols[i];
    const auto& info = db.catalog().cps_protocols()[proto];
    cps.add_row({info.name, info.application.substr(0, 40),
                 util::with_commas(count)});
  }
  std::printf("%s\n", cps.render().c_str());
  cps.write_csv(out_dir / "cps_exposure.csv");

  // ---- actionable per-device notification list ----
  // The paper's vision: "Internet-wide, IoT-tailored notifications of such
  // exploitations ... permitting rapid remediation". Emit the ISP-facing
  // notification list for the top offenders.
  analysis::TextTable notify({"Device IP", "Realm", "Type/Protocol",
                              "Country", "ISP", "Packets", "Classes"});
  std::vector<const core::DeviceTraffic*> offenders;
  for (const auto& ledger : report.devices) offenders.push_back(&ledger);
  std::sort(offenders.begin(), offenders.end(),
            [](const core::DeviceTraffic* a, const core::DeviceTraffic* b) {
              return a->packets > b->packets;
            });
  for (std::size_t i = 0; i < offenders.size() && i < 20; ++i) {
    const auto& ledger = *offenders[i];
    const auto& device = db.devices()[ledger.device];
    std::string kind = device.is_consumer()
                           ? inventory::to_string(device.consumer_type)
                           : db.catalog().cps_protocol_name(
                                 device.services.empty() ? 0
                                                         : device.services[0]);
    std::string classes;
    if (ledger.tcp_scan > 0) classes += "scan ";
    if (ledger.udp > 0) classes += "udp ";
    if (ledger.backscatter() > 0) classes += "dos-victim ";
    if (ledger.tcp_other > 0) classes += "misconfig";
    notify.add_row({device.ip.to_string(),
                    inventory::to_string(device.category), kind,
                    db.country_name(device.country), db.isp_name(device.isp),
                    util::with_commas(ledger.packets), classes});
  }
  std::printf("Top offenders (ISP notification list):\n%s\n",
              notify.render().c_str());
  notify.write_csv(out_dir / "notification_list.csv");

  // ---- persist the full inventory for downstream tooling ----
  db.save_csv(out_dir / "inventory.csv");
  std::printf("artifacts written to %s: compromised_by_country.csv, "
              "cps_exposure.csv, notification_list.csv, inventory.csv\n",
              out_dir.string().c_str());
  return 0;
}
