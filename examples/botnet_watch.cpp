// Botnet watch: the operational future-work loop of the paper in one
// program. Streams the telescope hour by hour and, in near real time,
// (1) alerts on newly discovered compromised inventory devices
//     (DiscoverySink, Discussion §VI),
// (2) fingerprints sustained non-inventory sources behaving like IoT bots
//     (fuzzy matching, Discussion §VI), and
// (3) clusters the inferred scanners into probing campaigns
//     (botnet clustering, Conclusion).
//
// Usage: botnet_watch [inventory_scale] [traffic_scale]
#include <cstdio>
#include <cstdlib>

#include "core/campaigns.hpp"
#include "core/fingerprint.hpp"
#include "core/iotscope.hpp"
#include "telescope/capture.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "workload/synth.hpp"

using namespace iotscope;

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::Warn);
  workload::ScenarioConfig config;
  config.inventory_scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  config.traffic_scale = argc > 2 ? std::atof(argv[2]) : 0.01;
  const auto scenario = workload::build_scenario(config);

  // --- near-real-time alerting while the telescope streams ---
  core::AnalysisPipeline pipeline(scenario.inventory);
  std::size_t alerts = 0;
  pipeline.set_discovery_sink([&](const core::Discovery& d) {
    ++alerts;
    if (alerts <= 12) {  // show the first few alerts live
      const auto& device = scenario.inventory.devices()[d.device];
      std::printf("[hour %3d] NEW compromised %s %s in %s — first flow: %s "
                  "(%s packets)\n",
                  d.interval + 1,
                  inventory::to_string(device.category),
                  device.is_consumer()
                      ? inventory::to_string(device.consumer_type)
                      : "device",
                  scenario.inventory.country_name(device.country).c_str(),
                  core::to_string(d.first_class),
                  util::with_commas(d.packets).c_str());
    }
  });

  telescope::TelescopeCapture capture(
      telescope::DarknetSpace(config.darknet),
      [&pipeline](net::FlowBatch&& batch) { pipeline.observe(batch); });
  workload::synthesize_into(scenario, config, capture);
  const auto report = pipeline.finalize();
  std::printf("... %zu discovery alerts in total\n\n", alerts);

  // --- fingerprint non-inventory IoT-like sources ---
  const auto fp = core::fingerprint_unindexed(report);
  std::printf("== Fuzzy fingerprinting of non-indexed sources ==\n");
  std::printf("%zu sustained unknown sources profiled; %zu match the IoT "
              "exploitation fingerprint:\n",
              report.unknown_sources.size(), fp.candidates.size());
  for (std::size_t i = 0; i < fp.candidates.size() && i < 6; ++i) {
    const auto& c = fp.candidates[i];
    std::printf("  %-15s %8s pkts toward IoT ports (share %s)\n",
                c.ip.to_string().c_str(), util::with_commas(c.packets).c_str(),
                util::percent(100 * c.iot_port_share, 0).c_str());
  }
  std::size_t truly_planted = 0;
  for (const auto& c : fp.candidates) {
    for (const auto& planted : scenario.truth.unindexed) {
      if (planted.ip == c.ip) {
        ++truly_planted;
        break;
      }
    }
  }
  std::printf("ground truth: %zu of %zu candidates are planted unindexed "
              "bots\n\n",
              truly_planted, fp.candidates.size());

  // --- cluster campaigns ---
  const auto campaigns = core::cluster_campaigns(report, scenario.inventory);
  std::printf("== Probing campaigns ==\n");
  for (std::size_t i = 0; i < campaigns.campaigns.size() && i < 6; ++i) {
    const auto& c = campaigns.campaigns[i];
    std::printf("  %-18s %4zu devices (%zu consumer), %10s packets, hours "
                "%d-%d\n",
                c.service_name.c_str(), c.devices.size(), c.consumer_devices,
                util::with_commas(c.packets).c_str(), c.start_interval + 1,
                c.end_interval + 1);
  }
  std::printf("%zu campaigns; %zu scanners clustered\n",
              campaigns.campaigns.size(), campaigns.devices_clustered);
  return 0;
}
