// Quickstart: run the whole study at a reduced scale and print the
// headline findings — the Section III/IV/V numbers the paper leads with.
//
// Usage: quickstart [inventory_scale] [traffic_scale]
//   e.g. `quickstart 0.1 0.02` (default) or `quickstart 1 1` for the
//   full 331k-device / 141M-packet reproduction (minutes, ~GBs of RAM).
#include <cstdio>
#include <cstdlib>

#include "core/iotscope.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

using namespace iotscope;

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::Info);

  core::StudyConfig config = core::StudyConfig::bench_default();
  if (argc > 1) config.scenario.inventory_scale = std::atof(argv[1]);
  if (argc > 2) config.scenario.traffic_scale = std::atof(argv[2]);

  std::printf("iotscope quickstart — inventory_scale=%.3f traffic_scale=%.3f\n\n",
              config.scenario.inventory_scale, config.scenario.traffic_scale);

  const auto result = core::run_study(config);
  const auto& report = result.report;
  const auto& character = result.character;
  const auto& db = result.scenario.inventory;

  std::printf("== Inference (Section III) ==\n");
  std::printf("inventory: %s devices (%s consumer, %s CPS) across %zu countries\n",
              util::with_commas(db.size()).c_str(),
              util::with_commas(db.consumer_count()).c_str(),
              util::with_commas(db.cps_count()).c_str(), db.country_count());
  std::printf("compromised IoT devices discovered at the telescope: %s "
              "(%s consumer / %s CPS)\n",
              util::with_commas(report.discovered_total()).c_str(),
              util::with_commas(report.discovered_consumer).c_str(),
              util::with_commas(report.discovered_cps).c_str());
  std::printf("countries hosting compromised devices: %zu\n",
              character.countries_with_compromised);
  if (!character.by_country_compromised.empty()) {
    const auto& top = character.by_country_compromised.front();
    std::printf("top compromised country: %s (%s devices, %.1f%% of its fleet)\n",
                db.country_name(top.country).c_str(),
                util::with_commas(top.compromised()).c_str(),
                top.pct_compromised());
  }

  std::printf("\n== Traffic characterization (Section IV) ==\n");
  std::printf("IoT packets observed: %s (+%s unattributed background)\n",
              util::human_count(static_cast<double>(report.total_packets)).c_str(),
              util::human_count(static_cast<double>(report.unattributed_packets)).c_str());
  std::printf("TCP scanning: %s packets from %zu devices (%zu consumer)\n",
              util::human_count(static_cast<double>(report.tcp_scan_total)).c_str(),
              report.scanner_devices, report.scanner_consumer_devices);
  if (!report.scan_services.empty()) {
    const auto& telnet = report.scan_services.front();
    std::printf("top scanned service: %s with %.1f%% of TCP scanning packets\n",
                telnet.name.c_str(),
                report.tcp_scan_total
                    ? 100.0 * static_cast<double>(telnet.packets) /
                          static_cast<double>(report.tcp_scan_total)
                    : 0.0);
  }
  std::printf("UDP: %s packets from %zu devices toward %zu distinct ports\n",
              util::human_count(static_cast<double>(report.udp_total_packets)).c_str(),
              report.udp_device_count, report.udp_distinct_ports);
  std::printf("DoS victims (backscatter sources): %zu (%zu in CPS), %s packets\n",
              report.dos_victims, report.dos_victims_cps,
              util::human_count(static_cast<double>(report.backscatter_total)).c_str());
  std::printf("Mann-Whitney U (hourly backscatter, CPS vs consumer): U=%.0f "
              "Z=%.2f p=%.2g\n",
              report.backscatter_mwu.u, report.backscatter_mwu.z,
              report.backscatter_mwu.p_value);

  std::printf("\n== Maliciousness (Section V) ==\n");
  const auto& mal = result.malicious;
  std::printf("explored devices: %zu; flagged by the threat repository: %zu "
              "(%.1f%%)\n",
              mal.explored_devices, mal.flagged_devices,
              mal.explored_devices
                  ? 100.0 * static_cast<double>(mal.flagged_devices) /
                        static_cast<double>(mal.explored_devices)
                  : 0.0);
  std::printf("devices linked to malware activity: %zu CPS + %zu consumer\n",
              mal.malware_cps, mal.malware_consumer);
  std::printf("malware-database correlation: %zu devices, %zu unique hashes, "
              "%zu domains\n",
              mal.devices_in_reports, mal.unique_hashes, mal.domains);
  std::printf("identified IoT-targeting malware families (%zu):",
              mal.families.size());
  for (const auto& f : mal.families) std::printf(" %s", f.c_str());
  std::printf("\n");
  return 0;
}
