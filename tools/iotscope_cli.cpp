// The iotscope command-line tool: generate a full telescope dataset on
// disk, then analyze it exactly the way an operator with real darknet
// data would — everything flows through the library's persistence
// formats (CSV inventory/intel, binary hourly flowtuples, XML sandbox
// reports).
//
//   iotscope synth       --out DIR [--inventory-scale S] [--traffic-scale S]
//                        [--seed N] [--noise R] [--with-truth] [--compress]
//                        [--scenario NAME]
//   iotscope scenario    --list | --name NAME [--out DIR] [--follow]
//                        [--scheduler S] [--threads N]
//   iotscope analyze     --data DIR [--top N] [--threads N] [--readers N]
//   iotscope fingerprint --data DIR [--threshold X] [--min-packets N]
//   iotscope campaigns   --data DIR [--threads N]
//   iotscope compact     --data DIR [--block-records N] [--no-verify] [--keep]
//   iotscope info        --data DIR
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "core/campaigns.hpp"
#include "core/fingerprint.hpp"
#include "core/iotscope.hpp"
#include "core/report_text.hpp"
#include "core/scenario_run.hpp"
#include "core/stream.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "serve/server.hpp"
#include "telescope/store.hpp"
#include "util/io.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "workload/engine.hpp"
#include "workload/synth.hpp"

using namespace iotscope;

namespace {

/// Minimal --key value flag parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
        std::exit(2);
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  unsigned get_unsigned(const std::string& key, unsigned fallback) const {
    const auto it = values_.find(key);
    return it == values_.end()
               ? fallback
               : static_cast<unsigned>(std::strtoul(it->second.c_str(),
                                                    nullptr, 10));
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Validates --threads. Absent means auto (0: all cores); an explicit
/// value must be a positive integer. `0`, negative, non-numeric, and
/// out-of-range values are rejected with a pointed error instead of
/// being silently coerced by strtoul (the old behavior turned
/// `--threads abc` into auto and `--threads -1` into 4294967295).
bool parse_threads(const Args& args, unsigned* threads) {
  *threads = 0;  // auto
  if (!args.has("threads")) return true;
  const std::string value = args.get("threads", "");
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    std::fprintf(stderr,
                 "iotscope: --threads expects a positive integer, got '%s'\n",
                 value.c_str());
    return false;
  }
  errno = 0;
  const unsigned long parsed = std::strtoul(value.c_str(), nullptr, 10);
  if (errno == ERANGE || parsed > std::numeric_limits<unsigned>::max()) {
    std::fprintf(stderr, "iotscope: --threads value '%s' is out of range\n",
                 value.c_str());
    return false;
  }
  if (parsed == 0) {
    std::fprintf(stderr,
                 "iotscope: --threads must be >= 1 (omit the flag to use all "
                 "cores)\n");
    return false;
  }
  *threads = static_cast<unsigned>(parsed);
  return true;
}

/// Validates an integer-valued flag through util::parse_decimal: empty,
/// non-numeric, negative, and out-of-range values are rejected with a
/// pointed error naming the flag. Runs before any dataset I/O, so
/// `--snapshot-every banana` fails in milliseconds instead of after a
/// multi-second load (the old get_double path silently coerced it to 0,
/// which meant "publish a snapshot after every hour" — or, for
/// --idle-ms, "stop immediately").
bool parse_flag_u64(const Args& args, const char* flag, std::uint64_t min,
                    std::uint64_t max, std::uint64_t* out) {
  if (!args.has(flag)) return true;
  const std::string value = args.get(flag, "");
  const auto parsed = util::parse_decimal(value);
  if (!parsed || *parsed < min || *parsed > max) {
    std::fprintf(stderr,
                 "iotscope: --%s expects an integer in [%llu, %llu], got "
                 "'%s'\n",
                 flag, static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(max), value.c_str());
    return false;
  }
  *out = *parsed;
  return true;
}

/// Validates --readers (store decoder threads for the batch scan).
bool parse_readers(const Args& args, std::uint64_t* readers) {
  *readers = 1;
  return parse_flag_u64(args, "readers", 1, 1024, readers);
}

/// Validates --scheduler. Absent means the default (morsel-driven work
/// stealing); an explicit value must name a known schedule. Rejected
/// before any dataset I/O, like --threads, so a typo fails in
/// milliseconds rather than after a multi-second load — and the report
/// is byte-identical under every choice, so there is nothing to coerce
/// a bad value to.
bool parse_scheduler(const Args& args, core::ShardScheduler* scheduler) {
  *scheduler = core::ShardScheduler::Stealing;
  if (!args.has("scheduler")) return true;
  const std::string value = args.get("scheduler", "");
  if (value == "static") {
    *scheduler = core::ShardScheduler::Static;
  } else if (value == "stealing") {
    *scheduler = core::ShardScheduler::Stealing;
  } else if (value == "graph") {
    *scheduler = core::ShardScheduler::Graph;
  } else {
    std::fprintf(stderr,
                 "iotscope: --scheduler expects one of static, stealing, "
                 "graph; got '%s'\n",
                 value.c_str());
    return false;
  }
  return true;
}

/// All analyze-mode knobs, validated up front (before the dataset loads).
struct AnalyzeFlags {
  unsigned threads = 0;  // auto
  core::ShardScheduler scheduler = core::ShardScheduler::Stealing;
  std::uint64_t readers = 1;
  std::uint64_t snapshot_every = 24;
  std::uint64_t evict_after = 6;
  std::uint64_t idle_ms = 500;
  bool serve = false;
  std::uint16_t serve_port = 0;  // 0 = ephemeral
};

bool parse_analyze_flags(const Args& args, AnalyzeFlags* flags) {
  if (!parse_threads(args, &flags->threads)) return false;
  if (!parse_scheduler(args, &flags->scheduler)) return false;
  if (!parse_readers(args, &flags->readers)) return false;
  if (!parse_flag_u64(args, "snapshot-every", 1, 1000000,
                      &flags->snapshot_every)) {
    return false;
  }
  if (!parse_flag_u64(args, "evict-after", 1, 1000000, &flags->evict_after)) {
    return false;
  }
  if (!parse_flag_u64(args, "idle-ms", 1, 86'400'000, &flags->idle_ms)) {
    return false;
  }
  if (args.has("serve")) {
    std::uint64_t port = 0;
    if (!parse_flag_u64(args, "serve", 0, 65535, &port)) return false;
    flags->serve = true;
    flags->serve_port = static_cast<std::uint16_t>(port);
  }
  return true;
}

/// Set by SIGINT/SIGTERM while the batch-mode server is up.
std::atomic<bool> g_interrupted{false};

void on_signal(int) { g_interrupted.store(true, std::memory_order_relaxed); }

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  iotscope synth       --out DIR [--inventory-scale S] "
               "[--traffic-scale S] [--seed N] [--noise R] [--with-truth] "
               "[--compress] [--scenario NAME]\n"
               "  iotscope scenario    --list | --name NAME [--out DIR] "
               "[--follow] [--scheduler S] [--threads N]\n"
               "  iotscope analyze     --data DIR [--top N] [--full] "
               "[--threads N] [--scheduler S] [--readers N] [--metrics] "
               "[--metrics-out FILE]\n"
               "                       [--follow] [--snapshot-every N] "
               "[--idle-ms N] [--evict-after N] [--serve PORT]\n"
               "  iotscope fingerprint --data DIR [--threshold X] "
               "[--min-packets N] [--threads N] [--scheduler S] [--metrics] "
               "[--metrics-out FILE]\n"
               "  iotscope campaigns   --data DIR [--threads N] "
               "[--scheduler S] [--metrics] [--metrics-out FILE]\n"
               "  iotscope compact     --data DIR [--block-records N] "
               "[--no-verify] [--keep]\n"
               "  iotscope info        --data DIR\n"
               "\n"
               "  --threads N        analysis worker shards; N must be a "
               "positive integer (default: all cores; 1 = sequential; "
               "identical output at any value)\n"
               "  --scheduler S      worker schedule: 'static' (bucket per "
               "worker), 'stealing' (morsel work stealing, default), or "
               "'graph' (task graph: decode/classify of the next hours "
               "overlaps analysis of the current one); the report is "
               "byte-identical under every choice\n"
               "  --readers N        store decoder threads for the batch "
               "scan (default 1; hours are still analyzed in interval "
               "order, so output is identical at any value; with "
               "--scheduler graph decode parallelism comes from the worker "
               "lanes instead and --readers is ignored)\n"
               "  --compress         synth writes compressed .iftc hourly "
               "files instead of raw .ift (every analysis reads either "
               "transparently)\n"
               "  --scenario NAME    synth emits the named phase-based "
               "adversarial scenario on top of the base telescope traffic "
               "(hostile hours land as corrupt files by design; see "
               "'iotscope scenario --list')\n"
               "  scenario           run a built-in adversarial scenario "
               "end to end and check its ground truth against the inference "
               "report; exits 1 and prints each violation if any assertion "
               "fails. --follow runs it through the streaming daemon "
               "(writer raced against the directory poll) instead of the "
               "batch scan; --out keeps the generated dataset\n"
               "  --block-records N  compact: records per compressed block "
               "(default 8192)\n"
               "  --no-verify        compact: skip the round-trip decode "
               "check before deleting each original\n"
               "  --keep             compact: keep the .ift originals "
               "beside the compressed files\n"
               "  --metrics          progress lines while analyzing + a "
               "per-stage timing summary on stderr\n"
               "  --metrics-out F    write the full metrics snapshot "
               "(counters, gauges, stage histograms) as JSON to F\n"
               "  --follow           streaming analyze: watch the flowtuple "
               "directory, admit hourly files as they rotate in (watermark "
               "order), stop after --idle-ms ms without a new hour "
               "(default 500); --snapshot-every N publishes an interim "
               "report every N hours (default 24), --evict-after N freezes "
               "unknown-source state idle for N hours (default 6). The "
               "final report is byte-identical to the batch path.\n"
               "  --serve PORT       HTTP query server on 127.0.0.1:PORT "
               "(0 = ephemeral; the bound port is printed on stderr). With "
               "--follow it serves live snapshots while the stream runs; "
               "without it serves the final report until SIGINT/SIGTERM. "
               "Endpoints: /healthz /metrics /report/summary "
               "/report/country/<name> /report/isp/<name> /report/type/<t> "
               "/report/ports/top?k=N /report/device/<ip>/timeline\n");
  return 2;
}

// ---------------------------------------------------------------- synth

/// synth --scenario NAME: emit a phase-based adversarial scenario as an
/// on-disk dataset. Hostile hours (if the scenario scripts any) are
/// written as corrupt files on purpose — that is the point of the
/// "malformed" builtin — so every downstream reader must quarantine
/// rather than abort.
int synth_scenario(const Args& args, const std::filesystem::path& out_dir) {
  const std::string name = args.get("scenario", "");
  const auto script = workload::builtin_scenario(name);
  if (!script) {
    std::fprintf(stderr,
                 "iotscope synth: unknown scenario '%s' (try 'iotscope "
                 "scenario --list')\n",
                 name.c_str());
    return 1;
  }
  std::printf("synthesizing scenario '%s' (%s)...\n", script->name.c_str(),
              script->description.c_str());
  const workload::ScenarioEngine engine(*script);
  engine.scenario().inventory.save_csv(out_dir / "inventory.csv");
  telescope::FlowTupleStore store(out_dir / "flowtuples");
  if (args.has("compress")) {
    store.set_write_format(telescope::StoreFormat::Compressed);
  }
  const auto result = engine.write_to_store(store);
  std::printf("wrote %s: inventory.csv (%zu devices), flowtuples/ (%zu "
              "hours, %s base + %s campaign packets, %zu hostile)\n",
              out_dir.string().c_str(), engine.scenario().inventory.size(),
              store.intervals().size(),
              util::human_count(static_cast<double>(result.synth.total))
                  .c_str(),
              util::human_count(
                  static_cast<double>(engine.truth().campaign_packets))
                  .c_str(),
              result.corrupted_hours);
  return 0;
}

int cmd_synth(const Args& args) {
  if (!args.has("out")) return usage();
  const std::filesystem::path out_dir = args.get("out", "");
  std::filesystem::create_directories(out_dir);
  if (args.has("scenario")) return synth_scenario(args, out_dir);

  workload::ScenarioConfig config;
  config.inventory_scale = args.get_double("inventory-scale", 0.05);
  config.traffic_scale = args.get_double("traffic-scale", 0.01);
  config.noise_ratio = args.get_double("noise", 0.10);
  config.seed = static_cast<std::uint64_t>(args.get_double("seed", 20170412));

  std::printf("synthesizing scenario (inventory %.3g, traffic %.3g, seed "
              "%llu)...\n",
              config.inventory_scale, config.traffic_scale,
              static_cast<unsigned long long>(config.seed));
  const auto scenario = workload::build_scenario(config);
  scenario.inventory.save_csv(out_dir / "inventory.csv");

  telescope::FlowTupleStore store(out_dir / "flowtuples");
  if (args.has("compress")) {
    store.set_write_format(telescope::StoreFormat::Compressed);
  }
  telescope::TelescopeCapture capture(
      telescope::DarknetSpace(config.darknet),
      [&store](net::FlowBatch&& batch) { store.put(batch); });
  const auto stats = workload::synthesize_into(scenario, config, capture);

  const auto threats =
      intel::synthesize_threat_repository(scenario, config);
  threats.save_csv(out_dir / "threats.csv");
  intel::MalwareSynthConfig malware_config;
  malware_config.corpus_size = 300;
  const auto corpus =
      intel::synthesize_malware_corpus(scenario, config, malware_config);
  corpus.database.export_xml(out_dir / "malware");
  corpus.resolver.save_csv(out_dir / "verdicts.csv");

  if (args.has("with-truth")) {
    // Validation aid: the ground-truth compromised set.
    std::string truth;
    for (const auto& plan : scenario.truth.plans) {
      truth += scenario.inventory.devices()[plan.device].ip.to_string();
      truth += "\n";
    }
    util::write_file(out_dir / "truth_compromised.txt", truth);
  }

  std::printf("wrote %s: inventory.csv (%zu devices), flowtuples/ (%zu "
              "hours, %s packets), threats.csv (%zu events), malware/ (%zu "
              "reports), verdicts.csv\n",
              out_dir.string().c_str(), scenario.inventory.size(),
              store.intervals().size(),
              util::human_count(static_cast<double>(stats.total)).c_str(),
              threats.event_count(), corpus.database.size());
  return 0;
}

// ------------------------------------------------------------ scenario

/// iotscope scenario: run a built-in adversarial scenario end to end and
/// hold the inference report to the engine's exact ground truth. This is
/// the operator-facing twin of scenario_engine_test: same driver, same
/// checker, exit 1 with one line per violated claim.
int cmd_scenario(const Args& args) {
  if (args.has("list")) {
    std::printf("built-in scenarios:\n");
    for (const std::string& name : workload::builtin_scenario_names()) {
      const auto script = workload::builtin_scenario(name);
      std::printf("  %-14s %s\n", name.c_str(),
                  script ? script->description.c_str() : "");
    }
    return 0;
  }
  if (!args.has("name")) return usage();
  const std::string name = args.get("name", "");
  const auto script = workload::builtin_scenario(name);
  if (!script) {
    std::fprintf(stderr,
                 "iotscope scenario: unknown scenario '%s' (try --list)\n",
                 name.c_str());
    return 1;
  }

  core::ScenarioRunOptions options;
  options.follow = args.has("follow");
  if (!parse_threads(args, &options.threads)) return usage();
  if (!parse_scheduler(args, &options.scheduler)) return usage();

  // --out keeps the generated dataset; otherwise run in a throwaway dir.
  std::optional<util::TempDir> scratch;
  std::filesystem::path dir;
  if (args.has("out")) {
    dir = args.get("out", "");
    std::filesystem::create_directories(dir);
  } else {
    scratch.emplace();
    dir = scratch->path();
  }

  const workload::ScenarioEngine engine(*script);
  std::printf("scenario '%s': %s\n", script->name.c_str(),
              script->description.c_str());
  const auto t0 = std::chrono::steady_clock::now();
  const auto run = core::run_scenario(engine, dir / "flowtuples", options);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  if (args.has("out")) {
    engine.scenario().inventory.save_csv(dir / "inventory.csv");
  }

  const auto& truth = engine.truth();
  std::printf("ran %s in %lld ms (%s): %s packets analyzed, %zu hostile "
              "hours quarantined, %zu recruits / %zu churned / %zu pulse "
              "victims / %zu zipf sources scripted\n",
              options.follow ? "--follow" : "batch",
              static_cast<long long>(elapsed),
              options.scheduler == core::ShardScheduler::Static ? "static"
              : options.scheduler == core::ShardScheduler::Graph ? "graph"
                                                                 : "stealing",
              util::human_count(static_cast<double>(
                                    run.report.total_packets +
                                    run.report.unattributed_packets))
                  .c_str(),
              static_cast<std::size_t>(run.hours_corrupt),
              truth.recruits.size(), truth.churned.size(),
              truth.pulses.size(), truth.zipf_sources.size());

  const auto violations = core::check_scenario(engine, run);
  if (!violations.empty()) {
    std::fprintf(stderr, "ground truth FAILED (%zu violations):\n",
                 violations.size());
    for (const std::string& violation : violations) {
      std::fprintf(stderr, "  %s\n", violation.c_str());
    }
    return 1;
  }
  std::printf("ground truth OK: every scripted campaign claim held\n");
  return 0;
}

// ------------------------------------------------------------- loading

struct Dataset {
  inventory::IoTDeviceDatabase inventory;
  telescope::FlowTupleStore store;
  intel::ThreatRepository threats;
  intel::MalwareDatabase malware;
  intel::FamilyResolver resolver;
};

Dataset load_dataset(const std::filesystem::path& dir) {
  Dataset data{inventory::IoTDeviceDatabase::load_csv(dir / "inventory.csv"),
               telescope::FlowTupleStore(dir / "flowtuples"),
               {},
               {},
               {}};
  if (std::filesystem::exists(dir / "threats.csv")) {
    data.threats = intel::ThreatRepository::load_csv(dir / "threats.csv");
  }
  if (std::filesystem::exists(dir / "malware")) {
    data.malware = intel::MalwareDatabase::import_xml(dir / "malware");
  }
  if (std::filesystem::exists(dir / "verdicts.csv")) {
    data.resolver = intel::FamilyResolver::load_csv(dir / "verdicts.csv");
  }
  return data;
}

bool metrics_requested(const Args& args) {
  return args.has("metrics") || args.has("metrics-out");
}

/// Prints the per-stage summary (--metrics) and/or writes the JSON
/// snapshot (--metrics-out FILE). Call at the end of a command, after
/// all pipeline work.
void emit_metrics(const Args& args) {
  if (!metrics_requested(args)) return;
  const auto snapshot = obs::Registry::instance().snapshot();
  if (args.has("metrics")) {
    std::fprintf(stderr, "%s", obs::render_text(snapshot).c_str());
  }
  const auto out = args.get("metrics-out", "");
  if (!out.empty()) util::write_file(out, obs::render_json(snapshot));
}

core::Report run_pipeline(
    const Dataset& data, const Args& args, unsigned threads,
    std::size_t readers = 1,
    core::ShardScheduler scheduler = core::ShardScheduler::Stealing) {
  core::PipelineOptions options;
  options.threads = threads;  // validated by parse_threads; 0 = all cores
  options.scheduler = scheduler;
  core::AnalysisPipeline pipeline(data.inventory, options);

  const bool metrics = metrics_requested(args);
  const std::size_t total_hours = metrics ? data.store.intervals().size() : 0;
  obs::ProgressMeter progress("analyze", total_hours);
  std::size_t hours = 0;
  std::size_t devices = 0;
  std::uint64_t packets = 0;
  if (metrics) {
    // Passive discovery counter for the progress line; the sink does not
    // alter the report (see pipeline_equivalence_test).
    pipeline.set_discovery_sink(
        [&devices](const core::Discovery&) { ++devices; });
  }

  if (scheduler == core::ShardScheduler::Graph) {
    // Task-graph mode: the store read is itself scheduled — each hour
    // becomes per-part decode tasks feeding classify/partition/observe,
    // and hour N+1 decodes while hour N folds, bounded by the pipeline's
    // in-flight-hours credit window. --readers is subsumed (decode
    // parallelism comes from the shared worker lanes). The after-hook
    // runs in the fence-serialized fan-in, hours in order, so the
    // progress accounting below needs no synchronization.
    for (const int interval : data.store.intervals()) {
      auto loaders = data.store.hour_loaders(interval, pipeline.threads());
      if (loaders.empty()) continue;
      pipeline.observe_async(
          std::move(loaders), [&](const net::FlowBatch& batch, bool ok) {
            if (!metrics || !ok) return;
            ++hours;
            packets += batch.total_packets();
            progress.update(hours, packets, devices);
          });
    }
    pipeline.drain();
  } else {
    // Decode the next hours on reader threads while this one analyzes.
    // Goes through the type-erased scan() deliberately: the CLI is the
    // designated std::function caller (visitors assembled at runtime);
    // the library-internal paths use the templated for_each. With one
    // reader this is exactly for_each with prefetch; more readers decode
    // hours concurrently but visit order (and thus the report) is
    // unchanged.
    const std::function<void(const net::FlowBatch&)> visit =
        [&](const net::FlowBatch& batch) {
          pipeline.observe(batch);
          if (metrics) {
            ++hours;
            packets += batch.total_packets();
            progress.update(hours, packets, devices);
          }
        };
    telescope::ScanOptions scan_options;
    scan_options.prefetch = 2;
    scan_options.readers = readers;
    data.store.scan(visit, scan_options);
  }
  auto report = pipeline.finalize();
  if (metrics) progress.finish(hours, packets, devices);
  return report;
}

/// Streaming analyze (--follow): follow the dataset's flowtuple
/// directory as a live store — hourly files that rotate in while we run
/// are admitted in watermark order — and stop once no new hour has
/// appeared for --idle-ms. Prints stream accounting on stderr; the
/// returned report is byte-identical to run_pipeline over the same set
/// of hours, so the printed analysis does not depend on which path
/// produced it.
core::Report run_streaming(const Dataset& data, const AnalyzeFlags& flags) {
  core::PipelineOptions pipeline_options;
  pipeline_options.threads = flags.threads;
  pipeline_options.scheduler = flags.scheduler;
  core::StreamOptions stream_options;
  stream_options.snapshot_every = static_cast<int>(flags.snapshot_every);
  stream_options.evict_after_hours = static_cast<int>(flags.evict_after);
  const auto idle_budget = std::chrono::milliseconds(flags.idle_ms);

  core::StreamingStudy stream(data.inventory, data.store, pipeline_options,
                              stream_options);

  // --serve with --follow: answer queries against whatever snapshot the
  // stream has published most recently, while ingestion keeps running.
  // The provider is one atomic load; a query mid-swap sees either the
  // old or the new epoch+report bundle, never a mix.
  std::optional<serve::ReportServer> server;
  if (flags.serve) {
    serve::ServerOptions server_options;
    server_options.port = flags.serve_port;
    server.emplace(
        data.inventory,
        [&stream]() -> serve::Snapshot {
          auto published = stream.latest_published();
          if (!published) return {};
          return serve::Snapshot{
              published->epoch,
              std::shared_ptr<const core::Report>(published,
                                                  &published->report)};
        },
        server_options);
    server->start();
    std::fprintf(stderr, "serve: listening on 127.0.0.1:%u\n",
                 static_cast<unsigned>(server->port()));
  }

  std::uint64_t hours_at_last_change = 0;
  auto last_change = std::chrono::steady_clock::now();
  stream.follow([&] {
    // Consulted only on drained polls: reset the idle clock whenever an
    // hour landed since we last looked, stop once the writer has been
    // quiet for the whole budget.
    const auto now = std::chrono::steady_clock::now();
    if (stream.stats().hours_admitted != hours_at_last_change) {
      hours_at_last_change = stream.stats().hours_admitted;
      last_change = now;
    }
    return now - last_change >= idle_budget;
  });
  auto report = stream.finalize();
  if (server) server->stop();
  const auto& stats = stream.stats();
  std::fprintf(stderr,
               "stream: %llu hours admitted (%llu late dropped), %llu "
               "snapshots, %llu profiles evicted, final watermark %d\n",
               static_cast<unsigned long long>(stats.hours_admitted),
               static_cast<unsigned long long>(stats.hours_late),
               static_cast<unsigned long long>(stats.snapshots_published),
               static_cast<unsigned long long>(stats.profiles_evicted),
               stream.watermark());
  return report;
}

// ------------------------------------------------------------- analyze

/// Batch-mode --serve: hold the final report up for queries until the
/// operator interrupts (SIGINT/SIGTERM). Runs after the printed summary
/// so the terminal shows the analysis before the "listening" line.
void serve_final_report(const Dataset& data, const core::Report& report,
                        const AnalyzeFlags& flags) {
  auto shared = std::make_shared<const core::Report>(report);
  serve::ServerOptions server_options;
  server_options.port = flags.serve_port;
  serve::ReportServer server(
      data.inventory,
      [shared]() { return serve::Snapshot{1, shared}; }, server_options);
  server.start();
  std::fprintf(stderr,
               "serve: listening on 127.0.0.1:%u (Ctrl-C to stop)\n",
               static_cast<unsigned>(server.port()));
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (!g_interrupted.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.stop();
}

int cmd_analyze(const Args& args) {
  if (!args.has("data")) return usage();
  AnalyzeFlags flags;
  if (!parse_analyze_flags(args, &flags)) return usage();
  const auto data = load_dataset(args.get("data", ""));
  const auto report =
      args.has("follow")
          ? run_streaming(data, flags)
          : run_pipeline(data, args, flags.threads,
                         static_cast<std::size_t>(flags.readers),
                         flags.scheduler);
  const auto character = core::characterize(report, data.inventory);
  const std::size_t top = static_cast<std::size_t>(args.get_double("top", 10));

  if (args.has("full")) {
    std::printf("%s\n", core::render_inference_report(report, character,
                                                      data.inventory)
                            .c_str());
    std::printf("%s\n",
                core::render_traffic_report(report, data.inventory).c_str());
    if (data.threats.flagged_ips() > 0) {
      core::MaliciousnessOptions options;
      options.top_per_realm = static_cast<std::size_t>(
          static_cast<double>(report.discovered_total()) * 0.15);
      const auto malicious = core::analyze_maliciousness(
          report, data.inventory, data.threats, data.malware, data.resolver,
          options);
      std::printf("%s", core::render_maliciousness_report(malicious).c_str());
    }
    if (flags.serve && !args.has("follow")) {
      serve_final_report(data, report, flags);
    }
    return 0;
  }

  std::printf("== iotscope analysis ==\n");
  std::printf("hours analyzed: %zu; IoT packets %s (+%s unattributed)\n",
              data.store.intervals().size(),
              util::human_count(static_cast<double>(report.total_packets)).c_str(),
              util::human_count(static_cast<double>(report.unattributed_packets)).c_str());
  std::printf("compromised devices: %zu (%zu consumer / %zu CPS) across %zu "
              "countries\n",
              report.discovered_total(), report.discovered_consumer,
              report.discovered_cps, character.countries_with_compromised);
  std::printf("traffic: scanning %s, UDP %s, backscatter %s (%zu victims)\n",
              util::human_count(static_cast<double>(report.tcp_scan_total)).c_str(),
              util::human_count(static_cast<double>(report.udp_total_packets)).c_str(),
              util::human_count(static_cast<double>(report.backscatter_total)).c_str(),
              report.dos_victims);

  std::printf("\ntop countries by compromised devices:\n");
  for (std::size_t i = 0;
       i < character.by_country_compromised.size() && i < top; ++i) {
    const auto& row = character.by_country_compromised[i];
    std::printf("  %-24s %6zu (%s of fleet)\n",
                data.inventory.country_name(row.country).c_str(),
                row.compromised(),
                util::percent(row.pct_compromised()).c_str());
  }

  std::printf("\ntop scanned services:\n");
  for (std::size_t s = 0; s < report.scan_services.size() && s < top; ++s) {
    const auto& svc = report.scan_services[s];
    if (svc.packets == 0) continue;
    std::printf("  %-18s %10s packets (%zu consumer / %zu CPS devices)\n",
                svc.name.c_str(), util::with_commas(svc.packets).c_str(),
                svc.consumer_devices, svc.cps_devices);
  }

  if (data.threats.flagged_ips() > 0) {
    core::MaliciousnessOptions options;
    options.top_per_realm = static_cast<std::size_t>(
        static_cast<double>(report.discovered_total()) * 0.15);
    const auto malicious = core::analyze_maliciousness(
        report, data.inventory, data.threats, data.malware, data.resolver,
        options);
    std::printf("\nmaliciousness: %zu of %zu explored devices flagged; %zu "
                "devices in sandbox reports; families:",
                malicious.flagged_devices, malicious.explored_devices,
                malicious.devices_in_reports);
    for (const auto& family : malicious.families) {
      std::printf(" %s", family.c_str());
    }
    std::printf("\n");
  }
  if (flags.serve && !args.has("follow")) {
    serve_final_report(data, report, flags);
  }
  return 0;
}

// --------------------------------------------------------- fingerprint

int cmd_fingerprint(const Args& args) {
  if (!args.has("data")) return usage();
  unsigned threads = 0;
  core::ShardScheduler scheduler = core::ShardScheduler::Stealing;
  if (!parse_threads(args, &threads)) return usage();
  if (!parse_scheduler(args, &scheduler)) return usage();
  const auto data = load_dataset(args.get("data", ""));
  const auto report = run_pipeline(data, args, threads, 1, scheduler);
  core::FingerprintOptions options;
  options.iot_port_share_threshold = args.get_double("threshold", 0.5);
  options.min_packets = static_cast<std::uint64_t>(
      args.get_double("min-packets", 20));
  const auto fp = core::fingerprint_unindexed(report, options);
  std::printf("%zu sustained unknown sources; %zu match the IoT "
              "fingerprint:\n",
              report.unknown_sources.size(), fp.candidates.size());
  for (const auto& c : fp.candidates) {
    std::printf("  %-15s %8s packets, IoT-port share %s, SYN share %s\n",
                c.ip.to_string().c_str(), util::with_commas(c.packets).c_str(),
                util::percent(100 * c.iot_port_share, 0).c_str(),
                util::percent(100 * c.syn_share, 0).c_str());
  }
  return 0;
}

// ----------------------------------------------------------- campaigns

int cmd_campaigns(const Args& args) {
  if (!args.has("data")) return usage();
  unsigned threads = 0;
  core::ShardScheduler scheduler = core::ShardScheduler::Stealing;
  if (!parse_threads(args, &threads)) return usage();
  if (!parse_scheduler(args, &scheduler)) return usage();
  const auto data = load_dataset(args.get("data", ""));
  const auto report = run_pipeline(data, args, threads, 1, scheduler);
  const auto campaigns = core::cluster_campaigns(report, data.inventory);
  std::printf("%zu probing campaigns (%zu scanners clustered):\n",
              campaigns.campaigns.size(), campaigns.devices_clustered);
  for (const auto& c : campaigns.campaigns) {
    std::printf("  %-18s %5zu devices, %12s packets, hours %d-%d\n",
                c.service_name.c_str(), c.devices.size(),
                util::with_commas(c.packets).c_str(), c.start_interval + 1,
                c.end_interval + 1);
  }
  return 0;
}

// ------------------------------------------------------------- compact

/// Converts a dataset's raw .ift hours to compressed .iftc in place.
/// Accepts --data pointing at either the dataset root (the flowtuples/
/// subdirectory is used) or a flowtuple directory itself.
int cmd_compact(const Args& args) {
  if (!args.has("data")) return usage();
  std::uint64_t block_records = net::CompressedFlowCodec::kDefaultBlockRecords;
  if (!parse_flag_u64(args, "block-records", 1,
                      net::CompressedFlowCodec::kMaxBlockRecords,
                      &block_records)) {
    return usage();
  }
  const std::filesystem::path dir = args.get("data", "");
  const auto store_dir =
      std::filesystem::is_directory(dir / "flowtuples") ? dir / "flowtuples"
                                                        : dir;
  if (!std::filesystem::is_directory(store_dir)) {
    std::fprintf(stderr, "iotscope compact: no such directory: %s\n",
                 store_dir.string().c_str());
    return 1;
  }
  telescope::FlowTupleStore store(store_dir);

  telescope::CompactOptions options;
  options.block_records = static_cast<std::size_t>(block_records);
  options.verify = !args.has("no-verify");
  options.keep_uncompressed = args.has("keep");

  const auto t0 = std::chrono::steady_clock::now();
  const auto stats = store.compact(options);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  const double ratio =
      stats.bytes_compressed > 0
          ? static_cast<double>(stats.bytes_raw) /
                static_cast<double>(stats.bytes_compressed)
          : 0.0;
  std::printf("compacted %zu hours (%s records%s) in %lld ms: %s -> %s "
              "(%.2fx)\n",
              stats.hours,
              util::with_commas(stats.records).c_str(),
              options.verify ? ", verified" : "",
              static_cast<long long>(elapsed),
              util::human_count(static_cast<double>(stats.bytes_raw)).c_str(),
              util::human_count(static_cast<double>(stats.bytes_compressed))
                  .c_str(),
              ratio);
  return 0;
}

// ---------------------------------------------------------------- info

int cmd_info(const Args& args) {
  if (!args.has("data")) return usage();
  const std::filesystem::path dir = args.get("data", "");
  const auto db = inventory::IoTDeviceDatabase::load_csv(dir / "inventory.csv");
  telescope::FlowTupleStore store(dir / "flowtuples");
  std::uint64_t packets = 0;
  std::size_t flows = 0;
  store.for_each([&](const net::FlowBatch& h) {
    packets += h.total_packets();
    flows += h.size();
  });
  std::printf("dataset %s:\n", dir.string().c_str());
  std::printf("  inventory: %zu devices (%zu consumer / %zu CPS), %zu ISPs, "
              "%zu countries\n",
              db.size(), db.consumer_count(), db.cps_count(), db.isps().size(),
              db.country_count());
  std::printf("  flowtuples: %zu hourly files, %zu flows, %s packets\n",
              store.intervals().size(), flows,
              util::human_count(static_cast<double>(packets)).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::Warn);
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Args args(argc, argv, 2);
    int rc = -1;
    if (command == "synth") rc = cmd_synth(args);
    else if (command == "scenario") rc = cmd_scenario(args);
    else if (command == "analyze") rc = cmd_analyze(args);
    else if (command == "fingerprint") rc = cmd_fingerprint(args);
    else if (command == "campaigns") rc = cmd_campaigns(args);
    else if (command == "compact") rc = cmd_compact(args);
    else if (command == "info") rc = cmd_info(args);
    if (rc >= 0) {
      emit_metrics(args);
      return rc;
    }
  } catch (const std::exception& e) {
    // Corrupt datasets (bad magic, truncated files, implausible counts)
    // surface as util::IoError from the codecs; exit cleanly instead of
    // aborting on an uncaught exception.
    std::fprintf(stderr, "iotscope %s: %s\n", command.c_str(), e.what());
    return 1;
  }
  return usage();
}
