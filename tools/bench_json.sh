#!/usr/bin/env bash
# Runs the bench_perf_micro microbenchmark suite and distills its
# google-benchmark JSON into a flat, diff-friendly summary committed as
# BENCH_pr<N>.json at the repo root: benchmark name -> ns/op and
# records/s (items_per_second where the bench reports one).
#
# Usage: tools/bench_json.sh [output.json] [bench-binary] [extra bench args...]
#   output.json    default BENCH_pr4.json (repo root)
#   bench-binary   default build/bench/bench_perf_micro
#
# Example: tools/bench_json.sh BENCH_pr4.json build/bench/bench_perf_micro \
#            --benchmark_filter='Flowtuple|Inventory|Accumulator'
#
# User counters pass through untouched, so the serve-layer load bench
# lands with its latency percentiles intact:
#   tools/bench_json.sh BENCH_pr7.json build/bench/bench_perf_micro \
#     --benchmark_filter='ServeQuery'
# -> BM_ServeQuery/<threads>/<ingest> entries carrying p50_us, p99_us,
#    cache_hit_pct, epochs, and records_per_s (= QPS).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
out="${1:-$repo_root/BENCH_pr4.json}"
bench="${2:-$repo_root/build/bench/bench_perf_micro}"
shift $(( $# > 2 ? 2 : $# )) || true

if [[ ! -x "$bench" ]]; then
  echo "bench_json: benchmark binary not found: $bench" >&2
  echo "bench_json: build it first (cmake --build build --target bench_perf_micro)" >&2
  exit 1
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

"$bench" --benchmark_format=json --benchmark_out_format=json "$@" > "$raw"

python3 - "$raw" "$out" <<'PY'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    report = json.load(f)

benchmarks = {}
for bench in report.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    # Normalize to nanoseconds regardless of the bench's display unit.
    unit = bench.get("time_unit", "ns")
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    entry = {"ns_per_op": round(bench["real_time"] * scale, 3)}
    if "items_per_second" in bench:
        entry["records_per_s"] = round(bench["items_per_second"], 1)
    # User counters (state.counters[...]) surface as extra numeric keys;
    # keep them — the scheduler benches report machine-independent
    # load-balance numbers (skew_pct, model_speedup, stolen_share) there.
    standard = {
        "real_time", "cpu_time", "iterations", "items_per_second",
        "bytes_per_second", "repetitions", "repetition_index",
        "family_index", "per_family_instance_index", "threads",
    }
    for key, value in bench.items():
        if key in standard or not isinstance(value, (int, float)):
            continue
        if isinstance(value, bool):
            continue
        entry[key] = round(value, 4)
    benchmarks[bench["name"]] = entry

summary = {
    "source": "bench/bench_perf_micro.cpp",
    "context": {
        k: report.get("context", {}).get(k)
        for k in ("host_name", "num_cpus", "mhz_per_cpu", "library_build_type")
    },
    "benchmarks": benchmarks,
}
with open(out_path, "w") as f:
    json.dump(summary, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"bench_json: wrote {len(benchmarks)} benchmarks to {out_path}")
PY
